package rlnc

import (
	"fmt"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/linalg"
)

// Scalar-vs-bulk at the packet level: BenchmarkEncodeScalar combines k
// payload rows one symbol at a time through Field.Mul/Add (the pre-kernel
// hot path), BenchmarkEncodeBulk is Node.Emit on the same configuration.
// BenchmarkDecode measures filling a fresh node to full rank and solving.

func benchNode(b *testing.B, k, r int) (*Node, [][]byte) {
	b.Helper()
	cfg := Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
	rng := core.NewRand(3)
	src := MustNewNode(cfg)
	payloads := make([][]byte, k)
	for i := 0; i < k; i++ {
		payloads[i] = gf.RandBytes(cfg.Field, r, rng)
		src.Seed(Message{Index: i, Payload: payloads[i]})
	}
	return src, payloads
}

func BenchmarkEncodeScalar(b *testing.B) {
	for _, r := range []int{256, 1024} {
		b.Run(fmt.Sprintf("k=32,r=%d", r), func(b *testing.B) {
			f := gf.MustNew(256)
			_, payloads := benchNode(b, 32, r)
			rng := core.NewRand(5)
			out := make([]byte, r)
			b.SetBytes(int64(32 * r))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(out)
				for _, p := range payloads {
					c := gf.Rand(f, rng)
					if c == 0 {
						continue
					}
					for j, s := range p {
						out[j] = byte(f.Add(gf.Elem(out[j]), f.Mul(c, gf.Elem(s))))
					}
				}
			}
		})
	}
}

func BenchmarkEncodeBulk(b *testing.B) {
	for _, r := range []int{256, 1024} {
		b.Run(fmt.Sprintf("k=32,r=%d", r), func(b *testing.B) {
			src, _ := benchNode(b, 32, r)
			rng := core.NewRand(5)
			b.SetBytes(int64(32 * r))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if src.Emit(rng) == nil {
					b.Fatal("nil packet")
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, r := range []int{256, 1024} {
		b.Run(fmt.Sprintf("k=32,r=%d", r), func(b *testing.B) {
			cfg := Config{Field: gf.MustNew(256), K: 32, PayloadLen: r}
			src, _ := benchNode(b, 32, r)
			rng := core.NewRand(7)
			// Pre-generate more packets than needed so every iteration
			// decodes from the same stream without re-emitting.
			pkts := make([]*Packet, 0, 64)
			for len(pkts) < 64 {
				pkts = append(pkts, src.Emit(rng))
			}
			b.SetBytes(int64(32 * r))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := MustNewNode(cfg)
				for _, p := range pkts {
					if dst.CanDecode() {
						break
					}
					dst.Receive(p)
				}
				if _, err := dst.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScreenFlood measures the cost of *rejecting* hostile packets:
// the width/zero/corrupt screens in Receive are what a Byzantine flood
// makes every honest node pay per packet, so rejection must stay cheap
// relative to an accepted reduction. Sub-benchmarks cover the three
// screen layers on the sliced GF(256) backend: the Corrupt flag (a
// pollution verdict already attached by the verifier), an all-zero
// coefficient vector (non-innovative by construction), and a
// wrong-width coefficient row (malformed network input).
func BenchmarkScreenFlood(b *testing.B) {
	src, _ := benchNode(b, 32, 64)
	rng := core.NewRand(7)
	good := src.Emit(rng)
	if good == nil || !src.SlicedMode() {
		b.Fatal("bench setup: expected a sliced-mode emission")
	}
	corrupt := *good
	corrupt.Corrupt = true
	zero := *good
	zero.Sliced = make(linalg.SlicedVec, len(good.Sliced))
	zero.SlicedPay = append(linalg.SlicedVec(nil), good.SlicedPay...)
	width := *good
	width.Sliced = good.Sliced[:len(good.Sliced)-1]

	cases := []struct {
		name string
		pkt  *Packet
	}{
		{"rlnc-corrupt", &corrupt},
		{"rlnc-zero", &zero},
		{"rlnc-width", &width},
	}
	sink := MustNewNode(src.Config())
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			if sink.Receive(c.pkt) {
				b.Fatalf("%s: screen accepted a hostile packet", c.name)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sink.Receive(c.pkt) {
					b.Fatal("screen accepted a hostile packet")
				}
			}
		})
	}
}
