package rlnc

import (
	"encoding/binary"
	"fmt"
)

// SplitBytes chunks arbitrary data into k messages of payloadLen GF(256)
// symbols each, prefixing the original length so JoinBytes can strip the
// padding. It requires a field of order 256 (one byte per symbol) and
// k*payloadLen >= len(data)+8.
func SplitBytes(data []byte, k, payloadLen int) ([]Message, error) {
	const header = 8
	capacity := k*payloadLen - header
	if capacity < len(data) {
		return nil, fmt.Errorf("rlnc: %d bytes exceed capacity %d (k=%d, r=%d)",
			len(data), capacity, k, payloadLen)
	}
	buf := make([]byte, k*payloadLen)
	binary.BigEndian.PutUint64(buf, uint64(len(data)))
	copy(buf[header:], data)
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = Message{Index: i, Payload: buf[i*payloadLen : (i+1)*payloadLen : (i+1)*payloadLen]}
	}
	return msgs, nil
}

// JoinBytes reassembles the original byte slice from k decoded messages
// (in any order).
func JoinBytes(msgs []Message) ([]byte, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("rlnc: no messages")
	}
	payloadLen := len(msgs[0].Payload)
	buf := make([]byte, len(msgs)*payloadLen)
	seen := make([]bool, len(msgs))
	for _, m := range msgs {
		if m.Index < 0 || m.Index >= len(msgs) {
			return nil, fmt.Errorf("rlnc: message index %d out of range", m.Index)
		}
		if seen[m.Index] {
			return nil, fmt.Errorf("rlnc: duplicate message index %d", m.Index)
		}
		seen[m.Index] = true
		if len(m.Payload) != payloadLen {
			return nil, fmt.Errorf("rlnc: inconsistent payload length")
		}
		copy(buf[m.Index*payloadLen:], m.Payload)
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("rlnc: missing message index %d", i)
		}
	}
	const header = 8
	size := binary.BigEndian.Uint64(buf)
	if int(size) > len(buf)-header {
		return nil, fmt.Errorf("rlnc: corrupt length header %d", size)
	}
	return buf[header : header+int(size)], nil
}
