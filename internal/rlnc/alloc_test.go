package rlnc

import (
	"bytes"
	"fmt"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// TestBitGenericEquivalence locks the backend-selection determinism
// contract: a GF(2) payload-carrying node on the packed bitset backend
// and one on the generic backend (ForceGeneric) consume the random
// stream identically and emit the same packets, so swapping backends can
// never move a fixed-seed trajectory. k > 64 forces multi-word rows.
func TestBitGenericEquivalence(t *testing.T) {
	const k, r = 70, 16
	f := gf.MustNew(2)
	bitCfg := Config{Field: f, K: k, PayloadLen: r}
	genCfg := Config{Field: f, K: k, PayloadLen: r, ForceGeneric: true}

	seedRNG := core.NewRand(5)
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = Message{Index: i, Payload: gf.RandBytes(f, r, seedRNG)}
	}
	bitSrc, genSrc := MustNewNode(bitCfg), MustNewNode(genCfg)
	bitDst, genDst := MustNewNode(bitCfg), MustNewNode(genCfg)
	if !bitSrc.BitMode() || genSrc.BitMode() {
		t.Fatal("backend selection wrong")
	}
	for _, m := range msgs {
		bitSrc.Seed(m)
		genSrc.Seed(m)
	}

	// Drive both universes with independent but identically seeded RNGs;
	// every emitted packet and every helpfulness verdict must agree.
	bitRNG, genRNG := core.NewRand(77), core.NewRand(77)
	for step := 0; step < 400; step++ {
		bp := bitSrc.Emit(bitRNG)
		gp := genSrc.Emit(genRNG)
		if !bytes.Equal(elemsToBytes(bp.ExpandCoeffs(k)), elemsToBytes(gp.Coeffs)) {
			t.Fatalf("step %d: coefficient vectors differ across backends", step)
		}
		if !bytes.Equal(bp.Payload, gp.Payload) {
			t.Fatalf("step %d: payloads differ across backends", step)
		}
		if bitDst.WouldHelp(bp) != genDst.WouldHelp(gp) {
			t.Fatalf("step %d: WouldHelp disagrees", step)
		}
		if bitDst.Receive(bp) != genDst.Receive(gp) {
			t.Fatalf("step %d: Receive helpfulness disagrees", step)
		}
		if bitDst.Rank() != genDst.Rank() {
			t.Fatalf("step %d: ranks diverged (%d vs %d)", step, bitDst.Rank(), genDst.Rank())
		}
	}
	if !bitDst.CanDecode() {
		t.Fatal("bit destination did not converge")
	}
	bitMsgs, err := bitDst.Decode()
	if err != nil {
		t.Fatal(err)
	}
	genMsgs, err := genDst.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if !bytes.Equal(bitMsgs[i].Payload, msgs[i].Payload) || !bytes.Equal(genMsgs[i].Payload, msgs[i].Payload) {
			t.Fatalf("decoded payload %d wrong", i)
		}
	}
}

func elemsToBytes(v []gf.Elem) []byte {
	out := make([]byte, len(v))
	for i, x := range v {
		out[i] = byte(x)
	}
	return out
}

// TestAdaptRoundTrip covers the wire-format bridge both ways plus its
// malformed-input rejections.
func TestAdaptRoundTrip(t *testing.T) {
	f := gf.MustNew(2)
	bitNode := MustNewNode(Config{Field: f, K: 5, RankOnly: true})
	genNode := MustNewNode(Config{Field: f, K: 5, RankOnly: true, ForceGeneric: true})
	bitNode.Seed(Message{Index: 2})
	genNode.Seed(Message{Index: 2})

	wire := &Packet{Coeffs: []gf.Elem{1, 0, 1, 0, 0}}
	native := bitNode.Adapt(wire)
	if native == nil || native.Bits == nil {
		t.Fatal("Adapt failed to pack a generic packet for a bit node")
	}
	if !bitNode.Receive(native) {
		t.Fatal("adapted packet should be helpful")
	}
	back := genNode.Adapt(bitNode.Emit(core.NewRand(3)))
	if back == nil || back.Coeffs == nil {
		t.Fatal("Adapt failed to expand a bit packet for a generic node")
	}
	if bitNode.Adapt(&Packet{Coeffs: []gf.Elem{2, 0, 0, 0, 0}}) != nil {
		t.Fatal("non-GF(2) coefficients must not pack")
	}
	if bitNode.Adapt(&Packet{Coeffs: []gf.Elem{1}}) != nil {
		t.Fatal("wrong-width coefficients must not pack")
	}
	if bitNode.Adapt(nil) != nil {
		t.Fatal("nil packet must adapt to nil")
	}
}

// TestAllocsSteadyStateSendReceive pins the zero-allocation contract of
// the pooled hot path: once a receiver is at full rank (the steady state
// of every simulation's tail), an EmitInto → ReceiveOwned → WouldHelp
// cycle through a recycled packet performs zero allocations per packet,
// on every backend.
func TestAllocsSteadyStateSendReceive(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"gf2-rankonly-bit", Config{Field: gf.MustNew(2), K: 96, RankOnly: true}},
		{"gf2-payload-bit", Config{Field: gf.MustNew(2), K: 96, PayloadLen: 256}},
		{"gf16-rankonly-sliced", Config{Field: gf.MustNew(16), K: 96, RankOnly: true}},
		{"gf256-rankonly-sliced", Config{Field: gf.MustNew(256), K: 96, RankOnly: true}},
		{"gf256-payload-sliced", Config{Field: gf.MustNew(256), K: 96, PayloadLen: 256}},
		{"gf256-rankonly-generic", Config{Field: gf.MustNew(256), K: 96, RankOnly: true, ForceGeneric: true}},
		{"gf256-payload-generic", Config{Field: gf.MustNew(256), K: 96, PayloadLen: 256, ForceGeneric: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := core.NewRand(9)
			src := MustNewNode(tc.cfg)
			dst := MustNewNode(tc.cfg)
			for i := 0; i < tc.cfg.K; i++ {
				msg := Message{Index: i}
				if !tc.cfg.RankOnly {
					msg.Payload = gf.RandBytes(tc.cfg.Field, tc.cfg.PayloadLen, rng)
				}
				src.Seed(msg)
			}
			pkt := &Packet{}
			for i := 0; i < 100*tc.cfg.K && !dst.CanDecode(); i++ {
				if src.EmitInto(rng, pkt) {
					dst.ReceiveOwned(pkt)
				}
			}
			if !dst.CanDecode() {
				t.Fatal("destination did not reach full rank")
			}
			// Warm the packet buffers once, then demand zero allocations.
			src.EmitInto(rng, pkt)
			allocs := testing.AllocsPerRun(200, func() {
				if !src.EmitInto(rng, pkt) {
					t.Fatal("emit failed")
				}
				if dst.WouldHelp(pkt) {
					t.Fatal("full-rank node cannot be helped")
				}
				if dst.ReceiveOwned(pkt) {
					t.Fatal("full-rank node cannot gain rank")
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state send/receive allocated %.1f allocs/packet, want 0", allocs)
			}
		})
	}
}

// TestAllocsRampUp bounds the ramp-up cost too: filling a fresh node to
// full rank through the pooled path stays within a small constant number
// of allocations per helpful packet (arena chunks plus bookkeeping),
// rather than the 3-per-packet of the historical copy-everything path.
func TestAllocsRampUp(t *testing.T) {
	cfg := Config{Field: gf.MustNew(2), K: 128, RankOnly: true}
	rng := core.NewRand(11)
	src := MustNewNode(cfg)
	for i := 0; i < cfg.K; i++ {
		src.Seed(Message{Index: i})
	}
	pkt := &Packet{}
	src.EmitInto(rng, pkt)
	allocs := testing.AllocsPerRun(20, func() {
		dst := MustNewNode(cfg)
		for !dst.CanDecode() {
			if src.EmitInto(rng, pkt) {
				dst.ReceiveOwned(pkt)
			}
		}
	})
	perHelpful := allocs / float64(cfg.K)
	if perHelpful > 1.0 {
		t.Fatalf("ramp-up cost %.2f allocs per helpful packet (total %.0f), want <= 1", perHelpful, allocs)
	}
}

func BenchmarkSteadyStateSendReceive(b *testing.B) {
	for _, q := range []int{2, 256} {
		b.Run(fmt.Sprintf("gf=%d/k=128", q), func(b *testing.B) {
			cfg := Config{Field: gf.MustNew(q), K: 128, RankOnly: true}
			rng := core.NewRand(13)
			src := MustNewNode(cfg)
			dst := MustNewNode(cfg)
			for i := 0; i < cfg.K; i++ {
				src.Seed(Message{Index: i})
			}
			pkt := &Packet{}
			for !dst.CanDecode() {
				if src.EmitInto(rng, pkt) {
					dst.ReceiveOwned(pkt)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.EmitInto(rng, pkt)
				dst.ReceiveOwned(pkt)
			}
		})
	}
}
