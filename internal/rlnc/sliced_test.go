package rlnc

import (
	"bytes"
	"fmt"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// TestSlicedGenericEquivalence locks the backend-selection determinism
// contract for the bit-sliced backend: a GF(2^m) payload-carrying node on
// the sliced backend and one on the generic backend (ForceGeneric)
// consume the random stream identically and emit the same packets, so
// swapping backends can never move a fixed-seed trajectory — the
// TestBitGenericEquivalence analogue for m ∈ {2, 4, 8}. k > 64 forces
// multi-word planes.
func TestSlicedGenericEquivalence(t *testing.T) {
	for _, q := range []int{4, 16, 256} {
		t.Run(fmt.Sprintf("gf=%d", q), func(t *testing.T) {
			const k, r = 70, 16
			f := gf.MustNew(q)
			slcCfg := Config{Field: f, K: k, PayloadLen: r}
			genCfg := Config{Field: f, K: k, PayloadLen: r, ForceGeneric: true}

			seedRNG := core.NewRand(5)
			msgs := make([]Message, k)
			for i := range msgs {
				msgs[i] = Message{Index: i, Payload: gf.RandBytes(f, r, seedRNG)}
			}
			slcSrc, genSrc := MustNewNode(slcCfg), MustNewNode(genCfg)
			slcDst, genDst := MustNewNode(slcCfg), MustNewNode(genCfg)
			if !slcSrc.SlicedMode() || genSrc.SlicedMode() || slcSrc.BitMode() {
				t.Fatal("backend selection wrong")
			}
			for _, m := range msgs {
				slcSrc.Seed(m)
				genSrc.Seed(m)
			}

			// Drive both universes with independent but identically seeded
			// RNGs; every emitted packet and helpfulness verdict must agree.
			slcRNG, genRNG := core.NewRand(77), core.NewRand(77)
			for step := 0; step < 400; step++ {
				sp := slcSrc.Emit(slcRNG)
				gp := genSrc.Emit(genRNG)
				if !bytes.Equal(elemsToBytes(sp.ExpandCoeffs(k)), elemsToBytes(gp.Coeffs)) {
					t.Fatalf("step %d: coefficient vectors differ across backends", step)
				}
				if !bytes.Equal(sp.ExpandPayload(r), gp.Payload) {
					t.Fatalf("step %d: payloads differ across backends", step)
				}
				if slcDst.WouldHelp(sp) != genDst.WouldHelp(gp) {
					t.Fatalf("step %d: WouldHelp disagrees", step)
				}
				if slcDst.Receive(sp) != genDst.Receive(gp) {
					t.Fatalf("step %d: Receive helpfulness disagrees", step)
				}
				if slcDst.Rank() != genDst.Rank() {
					t.Fatalf("step %d: ranks diverged (%d vs %d)", step, slcDst.Rank(), genDst.Rank())
				}
			}
			if !slcDst.CanDecode() {
				t.Fatal("sliced destination did not converge")
			}
			slcMsgs, err := slcDst.Decode()
			if err != nil {
				t.Fatal(err)
			}
			genMsgs, err := genDst.Decode()
			if err != nil {
				t.Fatal(err)
			}
			for i := range msgs {
				if !bytes.Equal(slcMsgs[i].Payload, msgs[i].Payload) || !bytes.Equal(genMsgs[i].Payload, msgs[i].Payload) {
					t.Fatalf("decoded payload %d wrong", i)
				}
			}
		})
	}
}

// TestSlicedAdaptRoundTrip covers the wire-format bridge both ways for
// the sliced backend plus its malformed-input rejections.
func TestSlicedAdaptRoundTrip(t *testing.T) {
	f := gf.MustNew(16)
	slcNode := MustNewNode(Config{Field: f, K: 5, PayloadLen: 3})
	genNode := MustNewNode(Config{Field: f, K: 5, PayloadLen: 3, ForceGeneric: true})
	seed := Message{Index: 2, Payload: []byte{1, 2, 3}}
	slcNode.Seed(seed)
	genNode.Seed(seed)

	wire := &Packet{Coeffs: []gf.Elem{1, 0, 7, 0, 0}, Payload: []byte{9, 8, 7}}
	native := slcNode.Adapt(wire)
	if native == nil || native.Sliced == nil || native.SlicedPay == nil {
		t.Fatal("Adapt failed to slice a generic packet for a sliced node")
	}
	// The pack/expand pair is lossless for valid symbols.
	if !bytes.Equal(elemsToBytes(native.ExpandCoeffs(5)), elemsToBytes(wire.Coeffs)) {
		t.Fatal("sliced pack/expand round trip lost coefficients")
	}
	if !bytes.Equal(native.ExpandPayload(3), wire.Payload) {
		t.Fatal("sliced pack/expand round trip lost payload")
	}
	if !slcNode.Receive(native) {
		t.Fatal("adapted packet should be helpful")
	}
	back := genNode.Adapt(slcNode.Emit(core.NewRand(3)))
	if back == nil || back.Coeffs == nil || back.Payload == nil {
		t.Fatal("Adapt failed to expand a sliced packet for a generic node")
	}
	if slcNode.Adapt(&Packet{Coeffs: []gf.Elem{1}}) != nil {
		t.Fatal("wrong-width coefficients must not slice")
	}
	if slcNode.Adapt(&Packet{Coeffs: []gf.Elem{1, 0, 0, 0, 0}, Payload: []byte{1}}) != nil {
		t.Fatal("wrong-width payload must not slice")
	}
	if slcNode.Adapt(nil) != nil {
		t.Fatal("nil packet must adapt to nil")
	}
	// Out-of-field symbols mask to m bits (the padded-table semantics):
	// 16 & 0xF == 0, so a lone symbol 16 packs to the zero vector.
	masked := slcNode.Adapt(&Packet{Coeffs: []gf.Elem{16, 0, 0, 0, 0}, Payload: []byte{0, 0, 0}})
	if masked == nil || !masked.IsZero() {
		t.Fatal("out-of-field symbol must mask to zero")
	}
}

// TestAdaptSlicedToRankOnlyGeneric: a payload-carrying sliced packet
// adapted for a rank-only generic peer must expand cleanly with its
// payload dropped (regression: ExpandPayload(0) used to divide by zero).
func TestAdaptSlicedToRankOnlyGeneric(t *testing.T) {
	f := gf.MustNew(256)
	src := MustNewNode(Config{Field: f, K: 4, PayloadLen: 3})
	for i := 0; i < 4; i++ {
		src.Seed(Message{Index: i, Payload: []byte{byte(i), 1, 2}})
	}
	pkt := src.Emit(core.NewRand(7))
	if pkt.SlicedPay == nil {
		t.Fatal("sliced emit must carry a sliced payload")
	}
	if got := pkt.ExpandPayload(0); got != nil {
		t.Fatalf("ExpandPayload(0) = %v, want nil", got)
	}
	rankOnly := MustNewNode(Config{Field: f, K: 4, RankOnly: true, ForceGeneric: true})
	adapted := rankOnly.Adapt(pkt)
	if adapted == nil || len(adapted.Coeffs) != 4 {
		t.Fatal("cross-backend adapt failed")
	}
	if !rankOnly.Receive(adapted) {
		t.Fatal("adapted packet should be helpful to an empty node")
	}
}
