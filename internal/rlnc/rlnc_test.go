package rlnc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/linalg"
)

func genericCfg(q, k, r int) Config {
	return Config{Field: gf.MustNew(q), K: k, PayloadLen: r}
}

// TestBackendReporting pins the backend-selection string: one value per
// backend kind, always carrying the active kernel tier.
func TestBackendReporting(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{Field: gf.MustNew(2), K: 4, PayloadLen: 2}, "bit/GF(2)"},
		{Config{Field: gf.MustNew(256), K: 4, PayloadLen: 2}, "sliced/GF(256)"},
		{Config{Field: gf.MustNew(256), K: 4, PayloadLen: 2, ForceGeneric: true}, "generic/GF(256)"},
		{Config{Field: gf.MustNew(7), K: 4, PayloadLen: 2}, "generic/F_7"},
	} {
		got := MustNewNode(tc.cfg).Backend()
		want := tc.want + " gf-tier=" + gf.ActiveTier().String()
		if got != want {
			t.Errorf("Backend() = %q, want %q", got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil field", Config{K: 3, PayloadLen: 1}},
		{"zero k", Config{Field: gf.MustNew(2), PayloadLen: 1}},
		{"zero payload", Config{Field: gf.MustNew(2), K: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewNode(tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Rank-only mode needs no payload length.
	if _, err := NewNode(Config{Field: gf.MustNew(2), K: 3, RankOnly: true}); err != nil {
		t.Errorf("rank-only config rejected: %v", err)
	}
}

func TestSeedAndRank(t *testing.T) {
	n := MustNewNode(genericCfg(256, 4, 2))
	if n.Rank() != 0 || n.CanDecode() {
		t.Fatal("fresh node must be empty")
	}
	n.Seed(Message{Index: 0, Payload: []byte{1, 2}})
	n.Seed(Message{Index: 2, Payload: []byte{3, 4}})
	if n.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", n.Rank())
	}
	// Re-seeding the same index is not helpful.
	n.Seed(Message{Index: 0, Payload: []byte{1, 2}})
	if n.Rank() != 2 {
		t.Fatalf("rank after duplicate seed = %d, want 2", n.Rank())
	}
}

func TestEmitFromEmptyNode(t *testing.T) {
	for _, cfg := range []Config{
		genericCfg(256, 3, 2),
		{Field: gf.MustNew(2), K: 3, RankOnly: true},
	} {
		n := MustNewNode(cfg)
		if n.Emit(core.NewRand(1)) != nil {
			t.Error("empty node must emit nil")
		}
	}
}

// TestGossipPairConvergence wires two nodes directly: one holds all k
// messages, the other receives random combinations until it can decode.
// Validates emit→receive→decode end to end on every backend.
func TestGossipPairConvergence(t *testing.T) {
	cfgs := []Config{
		genericCfg(2, 6, 4),
		genericCfg(4, 6, 4),
		genericCfg(256, 6, 4),
		{Field: gf.MustNew(256), K: 6, RankOnly: true},
		{Field: gf.MustNew(2), K: 6, RankOnly: true}, // bit backend
	}
	for _, cfg := range cfgs {
		name := cfg.Field.Name()
		if cfg.RankOnly {
			name += "-rankonly"
		}
		t.Run(name, func(t *testing.T) {
			rng := core.NewRand(42)
			src := MustNewNode(cfg)
			msgs := make([]Message, cfg.K)
			for i := range msgs {
				msgs[i] = Message{Index: i}
				if !cfg.RankOnly {
					msgs[i].Payload = gf.RandBytes(cfg.Field, cfg.PayloadLen, rng)
				}
				src.Seed(msgs[i])
			}
			if !src.CanDecode() {
				t.Fatal("source must be full rank after seeding all messages")
			}
			dst := MustNewNode(cfg)
			transmissions := 0
			for !dst.CanDecode() {
				transmissions++
				if transmissions > 10000 {
					t.Fatal("no convergence")
				}
				dst.Receive(src.Emit(rng))
			}
			// With q >= 2, expected transmissions ≈ k/(1-1/q); allow slack.
			if transmissions > 40*cfg.K {
				t.Errorf("took %d transmissions for k=%d", transmissions, cfg.K)
			}
			if cfg.RankOnly {
				if _, err := dst.Decode(); err == nil {
					t.Error("rank-only decode must fail")
				}
				return
			}
			got, err := dst.Decode()
			if err != nil {
				t.Fatal(err)
			}
			for i := range msgs {
				if got[i].Index != i {
					t.Fatalf("message %d has index %d", i, got[i].Index)
				}
				for j := range msgs[i].Payload {
					if got[i].Payload[j] != msgs[i].Payload[j] {
						t.Fatalf("payload mismatch at message %d symbol %d", i, j)
					}
				}
			}
		})
	}
}

func TestDecodeBeforeFullRank(t *testing.T) {
	n := MustNewNode(genericCfg(256, 3, 1))
	n.Seed(Message{Index: 0, Payload: []byte{7}})
	if _, err := n.Decode(); !errors.Is(err, ErrCannotDecode) {
		t.Fatalf("err = %v, want ErrCannotDecode", err)
	}
}

func TestReceiveNilAndZero(t *testing.T) {
	n := MustNewNode(genericCfg(256, 3, 1))
	if n.Receive(nil) {
		t.Error("nil packet must not help")
	}
	zero := &Packet{Coeffs: make([]gf.Elem, 3), Payload: make([]byte, 1)}
	if n.Receive(zero) {
		t.Error("zero packet must not help")
	}
}

// TestReceiveMalformedLengths: packets can arrive from the network with a
// peer's mismatched configuration; they must be rejected, not panic.
// ForceGeneric pins the generic backend's screen — GF(2^m) nodes select
// the sliced backend and apply their own (TestReceiveMalformedSliced).
func TestReceiveMalformedLengths(t *testing.T) {
	cfg := genericCfg(256, 3, 2)
	cfg.ForceGeneric = true
	n := MustNewNode(cfg)
	n.Seed(Message{Index: 0, Payload: []byte{1, 2}})
	cases := []*Packet{
		{Coeffs: []gf.Elem{1, 2}, Payload: []byte{3, 4}},       // short coeffs
		{Coeffs: []gf.Elem{1, 2, 3, 4}, Payload: []byte{3, 4}}, // long coeffs
		{Coeffs: []gf.Elem{0, 1, 0}, Payload: []byte{3}},       // short payload
		{Coeffs: []gf.Elem{0, 1, 0}, Payload: []byte{3, 4, 5}}, // long payload
		{Coeffs: []gf.Elem{0, 1, 0}},                           // missing payload
	}
	for i, p := range cases {
		if n.Receive(p) {
			t.Errorf("malformed packet %d reported helpful", i)
		}
		if n.WouldHelp(p) && len(p.Coeffs) != 3 {
			t.Errorf("malformed packet %d reported WouldHelp", i)
		}
	}
	if n.Rank() != 1 {
		t.Fatalf("rank changed to %d after malformed packets", n.Rank())
	}
}

// TestReceiveMalformedBits: the bit backend applies the same screen — a
// packed vector with the wrong word count or stray bits past k-1 is
// rejected, never panics, and never inflates the rank past k.
func TestReceiveMalformedBits(t *testing.T) {
	n := MustNewNode(Config{Field: gf.MustNew(2), K: 4, RankOnly: true})
	n.Seed(Message{Index: 0})
	stray := linalg.NewBitVec(4)
	stray[0] = 1 << 10 // bit index 10 >= k
	cases := []*Packet{
		{Bits: linalg.BitVec{}},       // zero words
		{Bits: linalg.NewBitVec(130)}, // too many words
		{Bits: stray},                 // stray high bit
	}
	for i, p := range cases {
		if n.Receive(p) || n.WouldHelp(p) {
			t.Errorf("malformed bit packet %d accepted", i)
		}
	}
	if n.Rank() != 1 {
		t.Fatalf("rank = %d after malformed bit packets, want 1", n.Rank())
	}
}

// TestReceiveMalformedSliced: the sliced backend applies the same screen —
// a sliced vector with the wrong word count or stray bits past column k-1
// in any plane is rejected, never panics, and never inflates the rank.
func TestReceiveMalformedSliced(t *testing.T) {
	n := MustNewNode(Config{Field: gf.MustNew(16), K: 5, RankOnly: true})
	if !n.SlicedMode() {
		t.Fatal("GF(16) node must select the sliced backend")
	}
	n.Seed(Message{Index: 0})
	stride := 4 * 1 // m=4 planes, 1 word each for k=5
	stray := make(linalg.SlicedVec, stride)
	stray[2] = 1 << 9 // column 9 >= k in plane 2
	cases := []*Packet{
		{Sliced: linalg.SlicedVec{1}},              // too few words
		{Sliced: make(linalg.SlicedVec, 2*stride)}, // too many words
		{Sliced: stray},                            // stray high column
		{Sliced: func() linalg.SlicedVec { // good coeffs, short payload: only rejected when payload mode
			v := make(linalg.SlicedVec, stride)
			v[0] = 1 << 1
			return v
		}()},
	}
	for i, p := range cases[:3] {
		if n.Receive(p) || n.WouldHelp(p) {
			t.Errorf("malformed sliced packet %d accepted", i)
		}
	}
	if n.Rank() != 1 {
		t.Fatalf("rank = %d after malformed sliced packets, want 1", n.Rank())
	}
	// Payload mode also screens the payload width.
	np := MustNewNode(Config{Field: gf.MustNew(16), K: 5, PayloadLen: 8})
	np.Seed(Message{Index: 1, Payload: make([]byte, 8)})
	if np.Receive(cases[3]) {
		t.Error("packet with missing sliced payload accepted")
	}
	if np.ReceiveOwned(&Packet{Sliced: cases[3].Sliced, SlicedPay: linalg.SlicedVec{1}}) {
		t.Error("packet with short sliced payload accepted")
	}
}

// TestHelpfulNodePredicate exercises Definition 3: x is helpful to y iff
// x's subspace is not contained in y's.
func TestHelpfulNodePredicate(t *testing.T) {
	cfg := genericCfg(256, 4, 1)
	x := MustNewNode(cfg)
	y := MustNewNode(cfg)
	x.Seed(Message{Index: 0, Payload: []byte{1}})
	if !x.HelpfulTo(y) {
		t.Fatal("x with info must be helpful to empty y")
	}
	if y.HelpfulTo(x) {
		t.Fatal("empty y cannot be helpful")
	}
	y.Seed(Message{Index: 0, Payload: []byte{1}})
	if x.HelpfulTo(y) {
		t.Fatal("equal subspaces are not helpful")
	}
	x.Seed(Message{Index: 1, Payload: []byte{2}})
	if !x.HelpfulTo(y) {
		t.Fatal("strictly larger subspace must be helpful")
	}
}

func TestHelpfulNodePredicateBitMode(t *testing.T) {
	cfg := Config{Field: gf.MustNew(2), K: 4, RankOnly: true}
	x := MustNewNode(cfg)
	y := MustNewNode(cfg)
	x.Seed(Message{Index: 2})
	if !x.HelpfulTo(y) || y.HelpfulTo(x) {
		t.Fatal("helpfulness wrong on bit backend")
	}
	y.Seed(Message{Index: 2})
	if x.HelpfulTo(y) {
		t.Fatal("equal subspaces are not helpful (bit backend)")
	}
}

// TestHelpfulMessageProbability empirically checks Lemma 2.1 of Deb et al.:
// a combination from a helpful node is helpful with probability >= 1 - 1/q.
func TestHelpfulMessageProbability(t *testing.T) {
	for _, q := range []int{2, 4, 256} {
		cfg := genericCfg(q, 8, 1)
		rng := core.NewRand(uint64(q))
		src := MustNewNode(cfg)
		for i := 0; i < cfg.K; i++ {
			src.Seed(Message{Index: i, Payload: []byte{byte(i % q)}})
		}
		dst := MustNewNode(cfg)
		dst.Seed(Message{Index: 0, Payload: []byte{0}})

		const trials = 3000
		helpful := 0
		for i := 0; i < trials; i++ {
			if dst.WouldHelp(src.Emit(rng)) {
				helpful++
			}
		}
		rate := float64(helpful) / trials
		want := 1 - 1/float64(q)
		if rate < want-0.05 {
			t.Errorf("q=%d: helpful rate %.3f below 1-1/q=%.3f", q, rate, want)
		}
	}
}

func TestSeedPanicsOnBadIndex(t *testing.T) {
	n := MustNewNode(genericCfg(2, 3, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Seed(Message{Index: 3, Payload: []byte{1}})
}

func TestBackendMismatchPanics(t *testing.T) {
	bitNode := MustNewNode(Config{Field: gf.MustNew(2), K: 3, RankOnly: true})
	genNode := MustNewNode(genericCfg(256, 3, 1))
	genNode.Seed(Message{Index: 0, Payload: []byte{1}})
	bitNode.Seed(Message{Index: 0})
	assertPanics(t, func() { bitNode.Receive(genNode.Emit(core.NewRand(1))) })
	assertPanics(t, func() { genNode.Receive(bitNode.Emit(core.NewRand(1))) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	fn()
}

func TestSplitJoinBytesRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello, gossip"),
		{},
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for _, data := range payloads {
		k := 8
		r := (len(data)+8)/k + 1
		msgs, err := SplitBytes(data, k, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != k {
			t.Fatalf("got %d messages, want %d", len(msgs), k)
		}
		// Shuffle order to prove order independence.
		msgs[0], msgs[k-1] = msgs[k-1], msgs[0]
		got, err := JoinBytes(msgs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
		}
	}
}

func TestSplitBytesCapacity(t *testing.T) {
	if _, err := SplitBytes(make([]byte, 100), 4, 4); err == nil {
		t.Error("expected capacity error")
	}
}

func TestJoinBytesErrors(t *testing.T) {
	msgs, err := SplitBytes([]byte("abc"), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	dup := append([]Message(nil), msgs...)
	dup[1] = dup[0]
	if _, err := JoinBytes(dup); err == nil {
		t.Error("duplicate index not rejected")
	}
	if _, err := JoinBytes(nil); err == nil {
		t.Error("empty input not rejected")
	}
}

// TestFullRLNCRoundTripQuick: random data of random size survives
// split → encode → network-coded delivery → decode → join.
func TestFullRLNCRoundTripQuick(t *testing.T) {
	f := gf.MustNew(256)
	check := func(seed uint64, sizeRaw uint16) bool {
		rng := core.NewRand(seed)
		size := int(sizeRaw) % 500
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		k := 5
		r := (size+8)/k + 1
		msgs, err := SplitBytes(data, k, r)
		if err != nil {
			return false
		}
		cfg := Config{Field: f, K: k, PayloadLen: r}
		src := MustNewNode(cfg)
		for _, m := range msgs {
			src.Seed(m)
		}
		dst := MustNewNode(cfg)
		for i := 0; i < 1000 && !dst.CanDecode(); i++ {
			dst.Receive(src.Emit(rng))
		}
		decoded, err := dst.Decode()
		if err != nil {
			return false
		}
		got, err := JoinBytes(decoded)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
