package rlnc

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// GenConfig configures generation-based RLNC: the k messages are split
// into ⌈k/GenSize⌉ *generations* coded independently, the standard
// practical refinement of RLNC (Chou et al.). Smaller generations shrink
// the per-packet coefficient overhead from k·log2(q) to GenSize·log2(q)
// bits (plus a generation tag) and cut decoding cost from O(k³) to
// O(k·GenSize²), at the price of a coupon-collector effect *across*
// generations — the trade-off quantified by ablation A7.
type GenConfig struct {
	// Inner carries the field and payload length; Inner.K is ignored
	// (derived per generation).
	Inner Config
	// K is the total number of messages.
	K int
	// GenSize is the number of messages per generation (the last
	// generation may be smaller).
	GenSize int
}

func (c GenConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("rlnc: k must be positive, got %d", c.K)
	}
	if c.GenSize <= 0 || c.GenSize > c.K {
		return fmt.Errorf("rlnc: generation size %d outside [1, %d]", c.GenSize, c.K)
	}
	return nil
}

// Generations returns the number of generations.
func (c GenConfig) Generations() int { return (c.K + c.GenSize - 1) / c.GenSize }

// genBounds returns the global index range [lo, hi) of generation g.
func (c GenConfig) genBounds(g int) (lo, hi int) {
	lo = g * c.GenSize
	hi = lo + c.GenSize
	if hi > c.K {
		hi = c.K
	}
	return lo, hi
}

// GenPacket is a coded packet tagged with its generation.
type GenPacket struct {
	// Gen identifies the generation the coefficients refer to.
	Gen int
	// Packet carries the (per-generation) coefficients and payload.
	Packet *Packet
}

// GenNode is per-gossip-node state for generation-based RLNC: one small
// decoder per generation.
type GenNode struct {
	cfg  GenConfig
	subs []*Node
}

// NewGenNode returns an empty generation-coded node.
func NewGenNode(cfg GenConfig) (*GenNode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &GenNode{cfg: cfg, subs: make([]*Node, cfg.Generations())}
	for g := range n.subs {
		lo, hi := cfg.genBounds(g)
		inner := cfg.Inner
		inner.K = hi - lo
		sub, err := NewNode(inner)
		if err != nil {
			return nil, err
		}
		n.subs[g] = sub
	}
	return n, nil
}

// Config returns the node's configuration.
func (n *GenNode) Config() GenConfig { return n.cfg }

// Rank returns the total rank across generations.
func (n *GenNode) Rank() int {
	total := 0
	for _, s := range n.subs {
		total += s.Rank()
	}
	return total
}

// CanDecode reports whether every generation is full rank.
func (n *GenNode) CanDecode() bool { return n.Rank() == n.cfg.K }

// Seed installs an initial message (global index).
func (n *GenNode) Seed(msg Message) {
	if msg.Index < 0 || msg.Index >= n.cfg.K {
		panic(fmt.Sprintf("rlnc: seed index %d out of range [0,%d)", msg.Index, n.cfg.K))
	}
	g := msg.Index / n.cfg.GenSize
	lo, _ := n.cfg.genBounds(g)
	local := msg
	local.Index = msg.Index - lo
	n.subs[g].Seed(local)
}

// Emit picks a uniformly random non-empty generation and emits a random
// combination from it. Returns nil when the node stores nothing.
func (n *GenNode) Emit(rng *rand.Rand) *GenPacket {
	nonEmpty := make([]int, 0, len(n.subs))
	for g, s := range n.subs {
		if s.Rank() > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	g := nonEmpty[rng.IntN(len(nonEmpty))]
	pkt := n.subs[g].Emit(rng)
	if pkt == nil {
		return nil
	}
	return &GenPacket{Gen: g, Packet: pkt}
}

// Receive ingests a packet, reporting whether it was helpful.
func (n *GenNode) Receive(p *GenPacket) bool {
	if p == nil {
		return false
	}
	if p.Gen < 0 || p.Gen >= len(n.subs) {
		panic(fmt.Sprintf("rlnc: generation %d out of range", p.Gen))
	}
	return n.subs[p.Gen].Receive(p.Packet)
}

// Decode returns all k messages with global indices. It fails until every
// generation has full rank.
func (n *GenNode) Decode() ([]Message, error) {
	if !n.CanDecode() {
		return nil, ErrCannotDecode
	}
	if n.cfg.Inner.RankOnly {
		return nil, errors.New("rlnc: decode unavailable in rank-only mode")
	}
	out := make([]Message, 0, n.cfg.K)
	for g, s := range n.subs {
		lo, _ := n.cfg.genBounds(g)
		msgs, err := s.Decode()
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			m.Index += lo
			out = append(out, m)
		}
	}
	return out, nil
}

// MessageBits returns the wire size of one generation-coded packet in
// bits: GenSize coefficients + payload symbols + the generation tag.
func (c GenConfig) MessageBits() int {
	bitsPerSym := 1
	for v := 2; v < c.Inner.Field.Order(); v <<= 1 {
		bitsPerSym++
	}
	r := c.Inner.PayloadLen
	if r == 0 {
		r = 1
	}
	tag := 1
	for v := 2; v < c.Generations(); v <<= 1 {
		tag++
	}
	return (c.GenSize+r)*bitsPerSym + tag
}
