package rlnc

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// GenConfig configures generation-based RLNC: the k messages are split
// into ⌈k/GenSize⌉ *generations* coded independently, the standard
// practical refinement of RLNC (Chou et al.). Smaller generations shrink
// the per-packet coefficient overhead from k·log2(q) to GenSize·log2(q)
// bits (plus a generation tag) and cut decoding cost from O(k³) to
// O(k·GenSize²), at the price of a coupon-collector effect *across*
// generations — the trade-off quantified by ablation A7.
type GenConfig struct {
	// Inner carries the field and payload length; Inner.K is ignored
	// (derived per generation).
	Inner Config
	// K is the total number of messages.
	K int
	// GenSize is the number of messages per generation (the last
	// generation may be smaller).
	GenSize int
}

// GenSizeError reports a generation size outside the valid range [1, K].
// It is a typed error so config-parsing layers (harness specs, command
// flags) can distinguish a bad -generations value from other failures.
type GenSizeError struct {
	// GenSize is the rejected generation size.
	GenSize int
	// K is the total message count the size was validated against.
	K int
}

func (e *GenSizeError) Error() string {
	return fmt.Sprintf("rlnc: generation size %d outside [1, %d]", e.GenSize, e.K)
}

func (c GenConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("rlnc: k must be positive, got %d", c.K)
	}
	if c.GenSize <= 0 || c.GenSize > c.K {
		return &GenSizeError{GenSize: c.GenSize, K: c.K}
	}
	return nil
}

// Generations returns the number of generations.
func (c GenConfig) Generations() int { return (c.K + c.GenSize - 1) / c.GenSize }

// genBounds returns the global index range [lo, hi) of generation g.
func (c GenConfig) genBounds(g int) (lo, hi int) {
	lo = g * c.GenSize
	hi = lo + c.GenSize
	if hi > c.K {
		hi = c.K
	}
	return lo, hi
}

// GenK returns the message count of generation g — GenSize for all but
// possibly the last generation, 0 outside [0, Generations()). Wire codecs
// need it to size the one-coefficient-per-symbol expansion of a tagged
// packet.
func (c GenConfig) GenK(g int) int {
	if g < 0 || g >= c.Generations() {
		return 0
	}
	lo, hi := c.genBounds(g)
	return hi - lo
}

// GenPacket is a coded packet tagged with its generation.
type GenPacket struct {
	// Gen identifies the generation the coefficients refer to.
	Gen int
	// Packet carries the (per-generation) coefficients and payload.
	Packet *Packet
}

// GenNode is per-gossip-node state for generation-based RLNC: one small
// decoder per generation.
type GenNode struct {
	cfg  GenConfig
	subs []*Node
	// rank and nonEmpty cache the sums over sub-decoders: large-n wake
	// loops query Rank/CanDecode on every contact, and recomputing them
	// as O(Generations()) sums dominated profiles at n = 10^5.
	rank     int
	nonEmpty int
}

// NewGenNode returns an empty generation-coded node.
func NewGenNode(cfg GenConfig) (*GenNode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &GenNode{cfg: cfg, subs: make([]*Node, cfg.Generations())}
	for g := range n.subs {
		lo, hi := cfg.genBounds(g)
		inner := cfg.Inner
		inner.K = hi - lo
		sub, err := NewNode(inner)
		if err != nil {
			return nil, err
		}
		n.subs[g] = sub
	}
	return n, nil
}

// Config returns the node's configuration.
func (n *GenNode) Config() GenConfig { return n.cfg }

// Rank returns the total rank across generations.
func (n *GenNode) Rank() int { return n.rank }

// CanDecode reports whether every generation is full rank.
func (n *GenNode) CanDecode() bool { return n.rank == n.cfg.K }

// bumped records a rank change of sub-decoder g in the cached totals.
func (n *GenNode) bumped(g, before int) {
	after := n.subs[g].Rank()
	n.rank += after - before
	if before == 0 && after > 0 {
		n.nonEmpty++
	}
}

// Seed installs an initial message (global index).
func (n *GenNode) Seed(msg Message) {
	if msg.Index < 0 || msg.Index >= n.cfg.K {
		panic(fmt.Sprintf("rlnc: seed index %d out of range [0,%d)", msg.Index, n.cfg.K))
	}
	g := msg.Index / n.cfg.GenSize
	lo, _ := n.cfg.genBounds(g)
	local := msg
	local.Index = msg.Index - lo
	before := n.subs[g].Rank()
	n.subs[g].Seed(local)
	n.bumped(g, before)
}

// Emit picks a uniformly random non-empty generation and emits a random
// combination from it. Returns nil when the node stores nothing.
// Allocates a fresh packet per call; hot paths use EmitInto with a
// pooled packet instead.
func (n *GenNode) Emit(rng *rand.Rand) *GenPacket {
	p := &GenPacket{}
	if !n.EmitInto(rng, p) {
		return nil
	}
	return p
}

// EmitInto fills p with a random combination from a uniformly random
// non-empty generation, reusing p's backing arrays across generations of
// different sizes (the inner EmitInto reslices or grows them as needed).
// It reports false — drawing no randomness — when the node stores
// nothing yet, mirroring Node.EmitInto. The emitted trajectory is
// identical to Emit's.
func (n *GenNode) EmitInto(rng *rand.Rand, p *GenPacket) bool {
	if n.nonEmpty == 0 {
		return false
	}
	pick := rng.IntN(n.nonEmpty)
	g := 0
	for i, s := range n.subs {
		if s.Rank() == 0 {
			continue
		}
		if pick == 0 {
			g = i
			break
		}
		pick--
	}
	p.Gen = g
	if p.Packet == nil {
		p.Packet = &Packet{}
	}
	return n.subs[g].EmitInto(rng, p.Packet)
}

// Receive ingests a packet, reporting whether it was helpful. Malformed
// packets — nil, generation tag outside [0, Generations()), or inner
// coefficient/payload lengths that do not match the tagged generation —
// are screened and reported unhelpful, never panicked on: generation
// tags arrive from the wire, so an out-of-range tag is an input error,
// not a programmer error.
func (n *GenNode) Receive(p *GenPacket) bool {
	if !n.screen(p) {
		return false
	}
	before := n.subs[p.Gen].Rank()
	helpful := n.subs[p.Gen].Receive(p.Packet)
	n.bumped(p.Gen, before)
	return helpful
}

// ReceiveOwned is Receive for callers that own the packet (pooled hot
// path): reduction happens directly in the packet's backing arrays,
// clobbering their contents, but the arrays are never retained. The same
// malformed-packet screening applies.
func (n *GenNode) ReceiveOwned(p *GenPacket) bool {
	if !n.screen(p) {
		return false
	}
	before := n.subs[p.Gen].Rank()
	helpful := n.subs[p.Gen].ReceiveOwned(p.Packet)
	n.bumped(p.Gen, before)
	return helpful
}

// Adapt converts a wire-format packet (one coefficient per symbol,
// lengths matching the tagged generation) into the generation's native
// backend, mirroring Node.Adapt. Malformed packets — nil, out-of-range
// generation tag, wrong lengths — return nil instead of panicking:
// generation tags arrive from the wire.
func (n *GenNode) Adapt(p *GenPacket) *GenPacket {
	if p == nil || p.Packet == nil || p.Gen < 0 || p.Gen >= len(n.subs) {
		return nil
	}
	inner := n.subs[p.Gen].Adapt(p.Packet)
	if inner == nil {
		return nil
	}
	if inner == p.Packet {
		return p
	}
	return &GenPacket{Gen: p.Gen, Packet: inner}
}

// screen rejects packets whose generation tag or backend shape cannot be
// delivered to this node's decoders.
func (n *GenNode) screen(p *GenPacket) bool {
	if p == nil || p.Packet == nil {
		return false
	}
	if p.Gen < 0 || p.Gen >= len(n.subs) {
		return false
	}
	// The sub-decoders' Receive paths screen lengths, but their
	// backend-mismatch checks panic (a mismatch is a programmer error on
	// a single-field link); a wire packet whose arrays belong to a
	// different backend than the tagged generation is screened here.
	sub := n.subs[p.Gen]
	switch {
	case sub.SlicedMode():
		return p.Packet.Sliced != nil
	case sub.BitMode():
		return p.Packet.Bits != nil
	default:
		return p.Packet.Coeffs != nil
	}
}

// Decode returns all k messages with global indices. It fails until every
// generation has full rank.
func (n *GenNode) Decode() ([]Message, error) {
	if !n.CanDecode() {
		return nil, ErrCannotDecode
	}
	if n.cfg.Inner.RankOnly {
		return nil, errors.New("rlnc: decode unavailable in rank-only mode")
	}
	out := make([]Message, 0, n.cfg.K)
	for g, s := range n.subs {
		lo, _ := n.cfg.genBounds(g)
		msgs, err := s.Decode()
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			m.Index += lo
			out = append(out, m)
		}
	}
	return out, nil
}

// MessageBits returns the wire size of one generation-coded packet in
// bits: GenSize coefficients + payload symbols + the generation tag.
func (c GenConfig) MessageBits() int {
	bitsPerSym := 1
	for v := 2; v < c.Inner.Field.Order(); v <<= 1 {
		bitsPerSym++
	}
	r := c.Inner.PayloadLen
	if r == 0 {
		r = 1
	}
	tag := 1
	for v := 2; v < c.Generations(); v <<= 1 {
		tag++
	}
	return (c.GenSize+r)*bitsPerSym + tag
}
