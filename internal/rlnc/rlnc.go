// Package rlnc implements random linear network coding, the message content
// of algebraic gossip (paper Section 2, "Random Linear Network Coding").
//
// There are k initial messages x_1..x_k, each a vector of r symbols over
// F_q. Every transmitted packet is a random linear combination of all
// packets stored at the sender: it carries the k coefficients of the
// combination and the combined r-symbol payload, for a total of
// (k + r)·log2(q) bits. A node stores only packets that are linearly
// independent of what it already holds (helpful messages, Definition 3);
// once its coefficient matrix reaches rank k it solves the linear system
// and recovers all k initial messages.
//
// Three backends share one API: a generic finite-field backend carrying
// payloads, a packed GF(2) bitset backend used whenever the field has
// order 2, and a bit-sliced backend for every other binary extension
// field GF(2^m) — so both binary and multi-bit-symbol simulations get
// word-wise XOR elimination end to end (the sliced backend turns dst +=
// c*src into at most m² plane XORs instead of k table gathers).
// Helpfulness (and hence every stopping time) depends only on coefficient
// vectors, and all backends consume protocol randomness identically, so
// backend selection never changes fixed-seed trajectories.
//
// Memory contract for the hot path: EmitInto fills a caller-owned Packet
// whose backing arrays are reused, Receive/ReceiveOwned never retain
// packet memory (surviving rows are copied into matrix-owned arenas), and
// WouldHelp reduces in matrix scratch. A protocol that recycles packets
// through a freelist therefore runs the steady-state send/receive cycle
// with zero allocations.
package rlnc

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"algossip/internal/gf"
	"algossip/internal/linalg"
)

// ErrCannotDecode is returned by Decode before the node has accumulated k
// independent equations.
var ErrCannotDecode = errors.New("rlnc: rank below k, cannot decode yet")

// Config describes one RLNC deployment: the field, the number of unknowns
// k, and the payload length r in field symbols.
type Config struct {
	// Field is the coefficient field F_q.
	Field gf.Field
	// K is the number of initial messages (unknowns).
	K int
	// PayloadLen is r, the number of field symbols per message payload.
	// Ignored in rank-only mode.
	PayloadLen int
	// RankOnly drops payloads and tracks only coefficient vectors.
	RankOnly bool
	// ForceGeneric disables the packed GF(2) and bit-sliced GF(2^m)
	// backends (testing and cross-validation only — the backends are
	// trajectory-identical, the generic one is just slower).
	ForceGeneric bool
}

func (c Config) validate() error {
	if c.Field == nil {
		return errors.New("rlnc: nil field")
	}
	if c.K <= 0 {
		return fmt.Errorf("rlnc: k must be positive, got %d", c.K)
	}
	if !c.RankOnly && c.PayloadLen <= 0 {
		return fmt.Errorf("rlnc: payload length must be positive, got %d", c.PayloadLen)
	}
	return nil
}

// bitMode reports whether the packed GF(2) backend applies. Since the
// bit backend learned to carry payload rows, every order-2 configuration
// qualifies — rank-only or not.
func (c Config) bitMode() bool { return c.Field.Order() == 2 && !c.ForceGeneric }

// slicedField returns the field when the bit-sliced GF(2^m) backend
// applies (any binary extension field of order > 2, unless ForceGeneric),
// nil otherwise. GF(2) stays on the dedicated bit backend.
func (c Config) slicedField() *gf.GF2m {
	if c.ForceGeneric || c.bitMode() {
		return nil
	}
	f, ok := c.Field.(*gf.GF2m)
	if !ok || f.Order() == 2 {
		return nil
	}
	return f
}

// extra returns the augmented payload width in bytes (0 in rank-only mode).
func (c Config) extra() int {
	if c.RankOnly {
		return 0
	}
	return c.PayloadLen
}

// Message is an initial (decoded) message: its index in 1..k (zero-based
// here) and its payload.
type Message struct {
	// Index identifies the unknown x_{Index+1}.
	Index int
	// Payload holds r field symbols, one byte-encoded symbol per byte.
	Payload []byte
}

// Packet is one transmitted coded message. The zero value is valid: the
// emit path (EmitInto) sizes the backing arrays on first use and reuses
// them afterwards, which is what makes pooled packets allocation-free.
type Packet struct {
	// Coeffs has length k (generic backend). Nil in bit and sliced modes.
	Coeffs []gf.Elem
	// Bits is the packed k-bit coefficient vector (bit mode). Nil otherwise.
	Bits linalg.BitVec
	// Sliced is the bit-sliced coefficient vector (sliced GF(2^m) mode):
	// m planes of SlicedWords(k) packed words. Nil otherwise.
	Sliced linalg.SlicedVec
	// Payload is the combined payload row, combined with the field's bulk
	// kernels (nil in rank-only and sliced modes).
	Payload []byte
	// SlicedPay is the bit-sliced payload row (sliced mode with payloads):
	// m planes of SlicedWords(r) packed words. Nil otherwise.
	SlicedPay linalg.SlicedVec
	// Corrupt marks a packet whose payload no longer matches its coefficient
	// vector — the detectable-pollution model for Byzantine senders. The
	// receive screens reject such packets (after the verification work the
	// protocol layer accounts for); honest emit paths always clear it.
	Corrupt bool
}

// IsZero reports whether the packet's coefficient vector is all-zero (such
// packets carry no information and are never helpful).
func (p *Packet) IsZero() bool {
	if p.Bits != nil {
		return p.Bits.IsZero()
	}
	if p.Sliced != nil {
		return p.Sliced.IsZero()
	}
	return gf.IsZeroVector(p.Coeffs)
}

// ExpandCoeffs returns the packet's coefficient vector in generic []Elem
// form, expanding packed bits or sliced planes when needed — the
// wire-format bridge for transports that serialize one coefficient per
// symbol. It allocates for bit and sliced packets; boundary code only.
func (p *Packet) ExpandCoeffs(k int) []gf.Elem {
	if p.Bits != nil {
		out := make([]gf.Elem, k)
		for i := range out {
			if p.Bits.Get(i) {
				out[i] = 1
			}
		}
		return out
	}
	if p.Sliced != nil {
		b := expandSliced(p.Sliced, k)
		out := make([]gf.Elem, k)
		for i, x := range b {
			out[i] = gf.Elem(x)
		}
		return out
	}
	return p.Coeffs
}

// ExpandPayload returns the packet's payload row in byte-encoded wire
// form for a payload width of r symbols, unpacking sliced planes when
// needed. A non-positive width returns nil even for a payload-carrying
// sliced packet (a rank-only peer requesting zero symbols — the
// cross-backend Adapt path). It allocates for sliced packets; boundary
// code only.
func (p *Packet) ExpandPayload(r int) []byte {
	if p.SlicedPay == nil {
		return p.Payload
	}
	if r <= 0 {
		return nil
	}
	return expandSliced(p.SlicedPay, r)
}

// expandSliced unpacks a plane-major sliced row of n symbols into bytes,
// inferring m from the slice length (the field is not needed: the layout
// alone determines the symbols).
func expandSliced(v linalg.SlicedVec, n int) []byte {
	out := make([]byte, n)
	words := gf.SlicedWords(n)
	m := len(v) / words
	for i := range out {
		w, b := i/64, uint(i)%64
		var s byte
		for j := 0; j < m; j++ {
			s |= byte((v[j*words+w]>>b)&1) << uint(j)
		}
		out[i] = s
	}
	return out
}

// PackCoeffs packs a generic GF(2) coefficient vector into a BitVec. It
// reports false when any coefficient is not 0 or 1 (the vector is not a
// valid GF(2) row). Boundary code only; the hot path stays packed.
func PackCoeffs(coeffs []gf.Elem) (linalg.BitVec, bool) {
	v := linalg.NewBitVec(len(coeffs))
	for i, c := range coeffs {
		switch c {
		case 0:
		case 1:
			v.Set(i)
		default:
			return nil, false
		}
	}
	return v, true
}

// Node is the per-gossip-node RLNC state: the matrix of stored equations.
// It is not safe for concurrent use; the concurrent runtime wraps it.
type Node struct {
	cfg Config
	mat *linalg.RankMatrix   // generic backend
	bit *linalg.BitMatrix    // bit backend (with payload rows when configured)
	slc *linalg.SlicedMatrix // bit-sliced GF(2^m) backend

	scratchBits linalg.BitVec // reusable Receive buffer (bit mode)
	scratchPay  []byte        // reusable Receive buffer (payload)
}

// NewNode returns an empty node for the given configuration.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg}
	switch {
	case cfg.bitMode():
		n.bit = linalg.NewBitMatrixPayload(cfg.K, cfg.extra())
	case cfg.slicedField() != nil:
		n.slc = linalg.NewSlicedMatrix(cfg.slicedField(), cfg.K, cfg.extra())
	default:
		n.mat = linalg.NewRankMatrix(cfg.Field, cfg.K, cfg.extra())
	}
	return n, nil
}

// MustNewNode is NewNode for known-good configurations; it panics on error.
func MustNewNode(cfg Config) *Node {
	n, err := NewNode(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// BitMode reports whether this node uses the packed GF(2) backend (its
// packets carry Bits instead of Coeffs).
func (n *Node) BitMode() bool { return n.bit != nil }

// SlicedMode reports whether this node uses the bit-sliced GF(2^m)
// backend (its packets carry Sliced/SlicedPay instead of Coeffs/Payload).
func (n *Node) SlicedMode() bool { return n.slc != nil }

// Backend returns the selected backend plus the kernel tier its inner
// loops dispatch to, e.g. "sliced/GF(256) gf-tier=gfni" — the string
// surfaced by status endpoints so perf numbers are attributable to both
// selection layers.
func (n *Node) Backend() string {
	kind := "generic"
	switch {
	case n.bit != nil:
		kind = "bit"
	case n.slc != nil:
		kind = "sliced"
	}
	return fmt.Sprintf("%s/%s gf-tier=%s", kind, n.cfg.Field.Name(), gf.ActiveTier())
}

// Rank returns the dimension of the node's equation space.
func (n *Node) Rank() int {
	switch {
	case n.bit != nil:
		return n.bit.Rank()
	case n.slc != nil:
		return n.slc.Rank()
	default:
		return n.mat.Rank()
	}
}

// CanDecode reports whether the node has reached rank k.
func (n *Node) CanDecode() bool { return n.Rank() == n.cfg.K }

// Seed installs an initial message at this node: the trivial equation
// x_{msg.Index} = msg.Payload. In rank-only mode the payload may be nil.
func (n *Node) Seed(msg Message) {
	if msg.Index < 0 || msg.Index >= n.cfg.K {
		panic(fmt.Sprintf("rlnc: seed index %d out of range [0,%d)", msg.Index, n.cfg.K))
	}
	var payload []byte
	if !n.cfg.RankOnly {
		if len(msg.Payload) != n.cfg.PayloadLen {
			panic(fmt.Sprintf("rlnc: payload length %d, want %d", len(msg.Payload), n.cfg.PayloadLen))
		}
		payload = msg.Payload
	}
	if n.bit != nil {
		v := linalg.NewBitVec(n.cfg.K)
		v.Set(msg.Index)
		// AddPayload consumes its inputs but copies survivors into the
		// matrix arena, so the caller's msg.Payload is cloned first.
		n.bit.AddPayload(v, append([]byte(nil), payload...))
		return
	}
	if n.slc != nil {
		// The unit vector e_Index has the single symbol value 1: only bit
		// plane 0 carries a bit. The payload packs through the field.
		v := make(linalg.SlicedVec, n.slc.Stride())
		v[msg.Index/64] |= 1 << (uint(msg.Index) % 64)
		var pay linalg.SlicedVec
		if n.slc.PayStride() > 0 {
			pay = make(linalg.SlicedVec, n.slc.PayStride())
			n.cfg.slicedField().PackSliced(pay, payload)
		}
		n.slc.AddOwned(v, pay)
		return
	}
	coeffs := make([]gf.Elem, n.cfg.K)
	coeffs[msg.Index] = 1
	n.mat.Add(coeffs, payload)
}

// Emit builds the packet an algebraic-gossip node transmits: a uniformly
// random linear combination of all stored packets. It returns nil when the
// node stores nothing yet (rank 0). Allocates a fresh packet per call;
// hot paths use EmitInto with a pooled packet instead.
func (n *Node) Emit(rng *rand.Rand) *Packet {
	p := &Packet{}
	if !n.EmitInto(rng, p) {
		return nil
	}
	return p
}

// EmitInto fills p with a uniformly random linear combination of all
// stored packets, reusing p's backing arrays (growing them on first use).
// It reports false — drawing no randomness — when the node stores
// nothing yet; p's fields may already have been resized or re-pointed by
// then, so a false return leaves the packet's contents unspecified. The
// emitted trajectory is identical to Emit's.
func (n *Node) EmitInto(rng *rand.Rand, p *Packet) bool {
	p.Corrupt = false
	if n.slc != nil {
		p.Coeffs, p.Bits, p.Payload = nil, nil, nil
		stride := n.slc.Stride()
		if cap(p.Sliced) >= stride {
			p.Sliced = p.Sliced[:stride]
		} else {
			p.Sliced = make(linalg.SlicedVec, stride)
		}
		if ps := n.slc.PayStride(); ps > 0 {
			if cap(p.SlicedPay) >= ps {
				p.SlicedPay = p.SlicedPay[:ps]
			} else {
				p.SlicedPay = make(linalg.SlicedVec, ps)
			}
		} else {
			p.SlicedPay = nil
		}
		return n.slc.RandomCombinationInto(rng, p.Sliced, p.SlicedPay)
	}
	p.Sliced, p.SlicedPay = nil, nil
	extra := n.cfg.extra()
	if extra > 0 && cap(p.Payload) >= extra {
		p.Payload = p.Payload[:extra]
	} else if extra > 0 {
		p.Payload = make([]byte, extra)
	} else {
		p.Payload = nil
	}
	if n.bit != nil {
		p.Coeffs = nil
		words := n.bit.Words()
		if cap(p.Bits) >= words {
			p.Bits = p.Bits[:words]
		} else {
			p.Bits = make(linalg.BitVec, words)
		}
		return n.bit.RandomCombinationInto(rng, p.Bits, p.Payload)
	}
	p.Bits = nil
	if cap(p.Coeffs) >= n.cfg.K {
		p.Coeffs = p.Coeffs[:n.cfg.K]
	} else {
		p.Coeffs = make([]gf.Elem, n.cfg.K)
	}
	return n.mat.RandomCombinationInto(rng, p.Coeffs, p.Payload)
}

// SkipEmit consumes exactly the randomness EmitInto would draw — one
// coefficient draw per stored row — without building the packet. It
// reports false (drawing nothing) when the node stores nothing yet,
// mirroring EmitInto's return. Simulators call it when the packet's fate
// is already determined (e.g. the receiver is at full rank, where any
// combination is unhelpful), so the trajectory-pinned random stream
// advances identically while the combination work is skipped.
func (n *Node) SkipEmit(rng *rand.Rand) bool {
	rank := n.Rank()
	if rank == 0 {
		return false
	}
	if n.bit != nil || n.slc != nil {
		// Both packed backends draw one Uint64 per stored row (IntN of a
		// power-of-two order is exactly one masked Uint64).
		for i := 0; i < rank; i++ {
			rng.Uint64()
		}
		return true
	}
	for i := 0; i < rank; i++ {
		gf.Rand(n.cfg.Field, rng)
	}
	return true
}

// EmitReplayInto fills p with a copy of the node's first stored echelon
// row — a syntactically valid packet that is never innovative to anyone
// who has heard this node before: the non-innovative replay behavior of a
// Byzantine sender. It draws no randomness (replay is a fixed function of
// state, so adversarial trials stay deterministic without touching the
// protocol's pinned random stream) and reports false when the node stores
// nothing yet. The row is copied, not aliased: receivers may clobber
// owned packets, and the matrix mutates its rows on later inserts.
func (n *Node) EmitReplayInto(p *Packet) bool {
	if n.Rank() == 0 {
		return false
	}
	p.Corrupt = false
	if n.slc != nil {
		p.Coeffs, p.Bits, p.Payload = nil, nil, nil
		p.Sliced = append(p.Sliced[:0], n.slc.Row(0)...)
		if n.slc.PayStride() > 0 {
			p.SlicedPay = append(p.SlicedPay[:0], n.slc.Payload(0)...)
		} else {
			p.SlicedPay = nil
		}
		return true
	}
	p.Sliced, p.SlicedPay = nil, nil
	if n.bit != nil {
		p.Coeffs = nil
		p.Bits = append(p.Bits[:0], n.bit.Row(0)...)
		if n.cfg.extra() > 0 {
			p.Payload = append(p.Payload[:0], n.bit.Payload(0)...)
		} else {
			p.Payload = nil
		}
		return true
	}
	p.Bits = nil
	p.Coeffs = append(p.Coeffs[:0], n.mat.Row(0)...)
	if n.cfg.extra() > 0 {
		p.Payload = append(p.Payload[:0], n.mat.Payload(0)...)
	} else {
		p.Payload = nil
	}
	return true
}

// Receive processes an incoming packet and reports whether it was helpful,
// i.e. increased the node's rank (Definition 3). Unhelpful packets are
// discarded, exactly as in the paper. The packet is neither modified nor
// retained (reduction happens in node-owned scratch); callers that own
// the packet and want to skip that defensive copy use ReceiveOwned.
func (n *Node) Receive(p *Packet) bool {
	if p == nil || p.Corrupt || p.IsZero() {
		return false
	}
	if n.slc != nil {
		if p.Sliced == nil {
			panic("rlnc: non-sliced packet delivered to sliced-mode node (use Adapt at wire boundaries)")
		}
		if !n.validSliced(p.Sliced) {
			return false
		}
		var pay linalg.SlicedVec
		if ps := n.slc.PayStride(); ps > 0 {
			if len(p.SlicedPay) != ps {
				return false // malformed payload width
			}
			pay = p.SlicedPay
		}
		// SlicedMatrix.Add reduces in matrix-owned scratch: the packet is
		// neither modified nor retained.
		return n.slc.Add(p.Sliced, pay)
	}
	if n.bit != nil {
		if p.Bits == nil {
			panic("rlnc: generic packet delivered to bit-mode node")
		}
		if !n.validBits(p.Bits) {
			return false
		}
		if n.scratchBits == nil {
			n.scratchBits = make(linalg.BitVec, n.bit.Words())
		}
		copy(n.scratchBits, p.Bits)
		pay := n.copyPayloadScratch(p.Payload)
		if pay == nil && n.cfg.extra() > 0 {
			return false // malformed payload width
		}
		return n.bit.AddPayload(n.scratchBits, pay)
	}
	if p.Coeffs == nil {
		panic("rlnc: bit packet delivered to generic-mode node")
	}
	// Malformed packets (wrong coefficient or payload width) can arrive from
	// the network; reject them instead of letting the eliminator panic.
	if len(p.Coeffs) != n.cfg.K {
		return false
	}
	var payload []byte
	if !n.cfg.RankOnly {
		if len(p.Payload) != n.cfg.PayloadLen {
			return false
		}
		payload = p.Payload
	}
	return n.mat.Add(p.Coeffs, payload)
}

// copyPayloadScratch copies a payload into the node's reusable payload
// scratch and returns it. It returns nil both on width mismatch and for
// rank-only nodes (extra == 0, nothing to copy) — which is why the
// caller must disambiguate nil with an extra() > 0 check before treating
// it as malformed.
func (n *Node) copyPayloadScratch(payload []byte) []byte {
	extra := n.cfg.extra()
	if extra == 0 {
		return nil
	}
	if len(payload) != extra {
		return nil
	}
	if n.scratchPay == nil {
		n.scratchPay = make([]byte, extra)
	}
	copy(n.scratchPay, payload)
	return n.scratchPay
}

// ReceiveOwned is Receive for callers that own the packet (pooled hot
// path): reduction happens directly in the packet's backing arrays,
// clobbering their contents, but the arrays are never retained — the
// caller recycles the packet afterwards. Helpfulness, rank evolution and
// randomness are identical to Receive.
func (n *Node) ReceiveOwned(p *Packet) bool {
	if p == nil || p.Corrupt || p.IsZero() {
		return false
	}
	if n.slc != nil {
		if p.Sliced == nil {
			panic("rlnc: non-sliced packet delivered to sliced-mode node (use Adapt at wire boundaries)")
		}
		if !n.validSliced(p.Sliced) {
			return false
		}
		var pay linalg.SlicedVec
		if ps := n.slc.PayStride(); ps > 0 {
			if len(p.SlicedPay) != ps {
				return false
			}
			pay = p.SlicedPay
		}
		return n.slc.AddOwned(p.Sliced, pay)
	}
	if n.bit != nil {
		if p.Bits == nil {
			panic("rlnc: generic packet delivered to bit-mode node")
		}
		if !n.validBits(p.Bits) {
			return false
		}
		extra := n.cfg.extra()
		if extra > 0 && len(p.Payload) != extra {
			return false
		}
		var pay []byte
		if extra > 0 {
			pay = p.Payload
		}
		return n.bit.AddPayload(p.Bits, pay)
	}
	if p.Coeffs == nil {
		panic("rlnc: bit packet delivered to generic-mode node")
	}
	if len(p.Coeffs) != n.cfg.K {
		return false
	}
	var payload []byte
	if !n.cfg.RankOnly {
		if len(p.Payload) != n.cfg.PayloadLen {
			return false
		}
		payload = p.Payload
	}
	return n.mat.AddOwned(p.Coeffs, payload)
}

// WouldHelp reports whether the packet would increase this node's rank,
// without storing it. The query reduces in matrix scratch: no allocation,
// no defensive copy, and the packet is not modified.
func (n *Node) WouldHelp(p *Packet) bool {
	if p == nil || p.Corrupt || p.IsZero() {
		return false
	}
	if n.slc != nil {
		if !n.validSliced(p.Sliced) {
			return false
		}
		return n.slc.WouldHelp(p.Sliced)
	}
	if n.bit != nil {
		if !n.validBits(p.Bits) {
			return false
		}
		return n.bit.WouldHelp(p.Bits)
	}
	if len(p.Coeffs) != n.cfg.K {
		return false
	}
	return n.mat.WouldHelp(p.Coeffs)
}

// validBits reports whether a bit-mode coefficient vector has exactly the
// packed width for k unknowns with no stray bits past index k-1 — the same
// malformed-packet screen the generic path applies to Coeffs/Payload.
func (n *Node) validBits(v linalg.BitVec) bool {
	words := (n.cfg.K + 63) / 64
	if len(v) != words {
		return false
	}
	if rem := n.cfg.K % 64; rem != 0 && v[words-1]>>uint(rem) != 0 {
		return false
	}
	return true
}

// validSliced is the sliced-mode malformed-packet screen: the vector must
// have exactly m planes of SlicedWords(k) words with no stray bits past
// column k-1 in any plane.
func (n *Node) validSliced(v linalg.SlicedVec) bool {
	if len(v) != n.slc.Stride() {
		return false
	}
	words := n.slc.Words()
	if rem := n.cfg.K % 64; rem != 0 {
		for j := words - 1; j < len(v); j += words {
			if v[j]>>uint(rem) != 0 {
				return false
			}
		}
	}
	return true
}

// Adapt converts a wire-format packet into this node's native
// representation: a generic-coefficient packet arriving at a bit-mode
// node is packed (rejecting vectors with non-GF(2) symbols by returning
// nil), one arriving at a sliced-mode node is bit-sliced (symbols are
// masked to m bits, the padded-table semantics of the byte kernels), a
// bit or sliced packet arriving at a generic node is expanded, and a
// packet already in native form is returned unchanged. Transports that
// pin a one-coefficient-per-symbol wire format call this before Receive.
func (n *Node) Adapt(p *Packet) *Packet {
	if p == nil {
		return nil
	}
	if n.slc != nil {
		if p.Sliced != nil {
			return p
		}
		if p.Bits != nil || len(p.Coeffs) != n.cfg.K {
			return nil // a bit-mode packet can only come from a mismatched field
		}
		f := n.cfg.slicedField()
		out := &Packet{Sliced: make(linalg.SlicedVec, n.slc.Stride()), Corrupt: p.Corrupt}
		raw := make([]byte, n.cfg.K)
		for i, c := range p.Coeffs {
			raw[i] = byte(c)
		}
		f.PackSliced(out.Sliced, raw)
		if extra := n.cfg.extra(); extra > 0 {
			if len(p.Payload) != extra {
				return nil
			}
			out.SlicedPay = make(linalg.SlicedVec, n.slc.PayStride())
			f.PackSliced(out.SlicedPay, p.Payload)
		}
		return out
	}
	if n.bit != nil && p.Bits == nil {
		if p.Sliced != nil || len(p.Coeffs) != n.cfg.K {
			return nil
		}
		bits, ok := PackCoeffs(p.Coeffs)
		if !ok {
			return nil
		}
		return &Packet{Bits: bits, Payload: p.Payload, Corrupt: p.Corrupt}
	}
	if n.bit == nil && (p.Bits != nil || p.Sliced != nil) {
		return &Packet{Coeffs: p.ExpandCoeffs(n.cfg.K), Payload: p.ExpandPayload(n.cfg.extra()), Corrupt: p.Corrupt}
	}
	return p
}

// HelpfulTo reports whether this node is a *helpful node* for other
// (Definition 3): whether some combination this node can construct is
// independent of everything other has — equivalently, whether this node's
// equation space is not contained in other's.
func (n *Node) HelpfulTo(other *Node) bool {
	if n.bit != nil {
		for i := 0; i < n.bit.Rank(); i++ {
			// Row views are safe here: WouldHelp reduces in scratch and
			// never mutates its input.
			if other.bit.WouldHelp(n.bit.Row(i)) {
				return true
			}
		}
		return false
	}
	if n.slc != nil {
		for i := 0; i < n.slc.Rank(); i++ {
			if other.slc.WouldHelp(n.slc.Row(i)) {
				return true
			}
		}
		return false
	}
	for i := 0; i < n.mat.Rank(); i++ {
		if other.mat.WouldHelp(n.mat.Row(i)) {
			return true
		}
	}
	return false
}

// Decode solves the linear system and returns all k initial messages in
// index order. It returns ErrCannotDecode when rank < k, and an error in
// rank-only mode (there are no payloads to recover).
func (n *Node) Decode() ([]Message, error) {
	if n.cfg.RankOnly {
		return nil, errors.New("rlnc: decode unavailable in rank-only mode")
	}
	if !n.CanDecode() {
		return nil, ErrCannotDecode
	}
	var payloads [][]byte
	var err error
	switch {
	case n.bit != nil:
		payloads, err = n.bit.Solve()
	case n.slc != nil:
		payloads, err = n.slc.Solve()
	default:
		payloads, err = n.mat.Solve()
	}
	if err != nil {
		return nil, fmt.Errorf("rlnc: decode: %w", err)
	}
	out := make([]Message, n.cfg.K)
	for i := range out {
		out[i] = Message{Index: i, Payload: payloads[i]}
	}
	return out, nil
}
