// Package rlnc implements random linear network coding, the message content
// of algebraic gossip (paper Section 2, "Random Linear Network Coding").
//
// There are k initial messages x_1..x_k, each a vector of r symbols over
// F_q. Every transmitted packet is a random linear combination of all
// packets stored at the sender: it carries the k coefficients of the
// combination and the combined r-symbol payload, for a total of
// (k + r)·log2(q) bits. A node stores only packets that are linearly
// independent of what it already holds (helpful messages, Definition 3);
// once its coefficient matrix reaches rank k it solves the linear system
// and recovers all k initial messages.
//
// Two backends share one API: a generic finite-field backend carrying
// payloads, and a coefficient-only GF(2) bitset backend used by large-scale
// simulations where only the stopping time matters (the rank evolution — and
// hence the stopping time — does not depend on payload content).
package rlnc

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"algossip/internal/gf"
	"algossip/internal/linalg"
)

// ErrCannotDecode is returned by Decode before the node has accumulated k
// independent equations.
var ErrCannotDecode = errors.New("rlnc: rank below k, cannot decode yet")

// Config describes one RLNC deployment: the field, the number of unknowns
// k, and the payload length r in field symbols.
type Config struct {
	// Field is the coefficient field F_q.
	Field gf.Field
	// K is the number of initial messages (unknowns).
	K int
	// PayloadLen is r, the number of field symbols per message payload.
	// Ignored in rank-only mode.
	PayloadLen int
	// RankOnly drops payloads and tracks only coefficient vectors. With
	// Field of order 2 this additionally selects the packed-bitset backend.
	RankOnly bool
}

func (c Config) validate() error {
	if c.Field == nil {
		return errors.New("rlnc: nil field")
	}
	if c.K <= 0 {
		return fmt.Errorf("rlnc: k must be positive, got %d", c.K)
	}
	if !c.RankOnly && c.PayloadLen <= 0 {
		return fmt.Errorf("rlnc: payload length must be positive, got %d", c.PayloadLen)
	}
	return nil
}

// bitMode reports whether the packed GF(2) backend applies.
func (c Config) bitMode() bool { return c.RankOnly && c.Field.Order() == 2 }

// Message is an initial (decoded) message: its index in 1..k (zero-based
// here) and its payload.
type Message struct {
	// Index identifies the unknown x_{Index+1}.
	Index int
	// Payload holds r field symbols, one byte-encoded symbol per byte.
	Payload []byte
}

// Packet is one transmitted coded message.
type Packet struct {
	// Coeffs has length k (generic backend). Nil in bit mode.
	Coeffs []gf.Elem
	// Bits is the packed k-bit coefficient vector (bit mode). Nil otherwise.
	Bits linalg.BitVec
	// Payload is the combined payload row, combined with the field's bulk
	// kernels (nil in rank-only mode).
	Payload []byte
}

// IsZero reports whether the packet's coefficient vector is all-zero (such
// packets carry no information and are never helpful).
func (p *Packet) IsZero() bool {
	if p.Bits != nil {
		return p.Bits.IsZero()
	}
	return gf.IsZeroVector(p.Coeffs)
}

// Node is the per-gossip-node RLNC state: the matrix of stored equations.
// It is not safe for concurrent use; the concurrent runtime wraps it.
type Node struct {
	cfg Config
	mat *linalg.RankMatrix // generic backend
	bit *linalg.BitMatrix  // bit backend
}

// NewNode returns an empty node for the given configuration.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg}
	if cfg.bitMode() {
		n.bit = linalg.NewBitMatrix(cfg.K)
	} else {
		extra := cfg.PayloadLen
		if cfg.RankOnly {
			extra = 0
		}
		n.mat = linalg.NewRankMatrix(cfg.Field, cfg.K, extra)
	}
	return n, nil
}

// MustNewNode is NewNode for known-good configurations; it panics on error.
func MustNewNode(cfg Config) *Node {
	n, err := NewNode(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Rank returns the dimension of the node's equation space.
func (n *Node) Rank() int {
	if n.bit != nil {
		return n.bit.Rank()
	}
	return n.mat.Rank()
}

// CanDecode reports whether the node has reached rank k.
func (n *Node) CanDecode() bool { return n.Rank() == n.cfg.K }

// Seed installs an initial message at this node: the trivial equation
// x_{msg.Index} = msg.Payload. In rank-only mode the payload may be nil.
func (n *Node) Seed(msg Message) {
	if msg.Index < 0 || msg.Index >= n.cfg.K {
		panic(fmt.Sprintf("rlnc: seed index %d out of range [0,%d)", msg.Index, n.cfg.K))
	}
	if n.bit != nil {
		v := linalg.NewBitVec(n.cfg.K)
		v.Set(msg.Index)
		n.bit.Add(v)
		return
	}
	coeffs := make([]gf.Elem, n.cfg.K)
	coeffs[msg.Index] = 1
	var payload []byte
	if !n.cfg.RankOnly {
		if len(msg.Payload) != n.cfg.PayloadLen {
			panic(fmt.Sprintf("rlnc: payload length %d, want %d", len(msg.Payload), n.cfg.PayloadLen))
		}
		payload = msg.Payload
	}
	n.mat.Add(coeffs, payload)
}

// Emit builds the packet an algebraic-gossip node transmits: a uniformly
// random linear combination of all stored packets. It returns nil when the
// node stores nothing yet (rank 0).
func (n *Node) Emit(rng *rand.Rand) *Packet {
	if n.bit != nil {
		combo := n.bit.RandomCombination(rng)
		if combo == nil {
			return nil
		}
		return &Packet{Bits: combo}
	}
	coeffs, payload := n.mat.RandomCombination(rng)
	if coeffs == nil {
		return nil
	}
	return &Packet{Coeffs: coeffs, Payload: payload}
}

// Receive processes an incoming packet and reports whether it was helpful,
// i.e. increased the node's rank (Definition 3). Unhelpful packets are
// discarded, exactly as in the paper.
func (n *Node) Receive(p *Packet) bool {
	if p == nil || p.IsZero() {
		return false
	}
	if n.bit != nil {
		if p.Bits == nil {
			panic("rlnc: generic packet delivered to bit-mode node")
		}
		if !n.validBits(p.Bits) {
			return false
		}
		return n.bit.Add(p.Bits.Clone())
	}
	if p.Coeffs == nil {
		panic("rlnc: bit packet delivered to generic-mode node")
	}
	// Malformed packets (wrong coefficient or payload width) can arrive from
	// the network; reject them instead of letting the eliminator panic.
	if len(p.Coeffs) != n.cfg.K {
		return false
	}
	var payload []byte
	if !n.cfg.RankOnly {
		if len(p.Payload) != n.cfg.PayloadLen {
			return false
		}
		payload = p.Payload
	}
	return n.mat.Add(p.Coeffs, payload)
}

// WouldHelp reports whether the packet would increase this node's rank,
// without storing it.
func (n *Node) WouldHelp(p *Packet) bool {
	if p == nil || p.IsZero() {
		return false
	}
	if n.bit != nil {
		if !n.validBits(p.Bits) {
			return false
		}
		return n.bit.WouldHelp(p.Bits)
	}
	if len(p.Coeffs) != n.cfg.K {
		return false
	}
	return n.mat.WouldHelp(p.Coeffs)
}

// validBits reports whether a bit-mode coefficient vector has exactly the
// packed width for k unknowns with no stray bits past index k-1 — the same
// malformed-packet screen the generic path applies to Coeffs/Payload.
func (n *Node) validBits(v linalg.BitVec) bool {
	words := (n.cfg.K + 63) / 64
	if len(v) != words {
		return false
	}
	if rem := n.cfg.K % 64; rem != 0 && v[words-1]>>uint(rem) != 0 {
		return false
	}
	return true
}

// HelpfulTo reports whether this node is a *helpful node* for other
// (Definition 3): whether some combination this node can construct is
// independent of everything other has — equivalently, whether this node's
// equation space is not contained in other's.
func (n *Node) HelpfulTo(other *Node) bool {
	if n.bit != nil {
		for i := 0; i < n.bit.Rank(); i++ {
			// Row access via re-reduction: test each basis row.
			if other.bit.WouldHelp(n.bitRow(i)) {
				return true
			}
		}
		return false
	}
	for i := 0; i < n.mat.Rank(); i++ {
		if other.mat.WouldHelp(n.mat.Row(i)) {
			return true
		}
	}
	return false
}

// bitRow reconstructs basis row i of the bit backend. The BitMatrix does
// not expose rows directly, so Node keeps this thin helper.
func (n *Node) bitRow(i int) linalg.BitVec {
	return n.bit.Basis(i)
}

// Decode solves the linear system and returns all k initial messages in
// index order. It returns ErrCannotDecode when rank < k, and an error in
// rank-only mode (there are no payloads to recover).
func (n *Node) Decode() ([]Message, error) {
	if n.cfg.RankOnly {
		return nil, errors.New("rlnc: decode unavailable in rank-only mode")
	}
	if !n.CanDecode() {
		return nil, ErrCannotDecode
	}
	payloads, err := n.mat.Solve()
	if err != nil {
		return nil, fmt.Errorf("rlnc: decode: %w", err)
	}
	out := make([]Message, n.cfg.K)
	for i := range out {
		out[i] = Message{Index: i, Payload: payloads[i]}
	}
	return out, nil
}
