package rlnc

import (
	"fmt"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

func genCfg(k, genSize int) GenConfig {
	return GenConfig{
		Inner:   Config{Field: gf.MustNew(256), PayloadLen: 4},
		K:       k,
		GenSize: genSize,
	}
}

func TestGenConfigValidation(t *testing.T) {
	bad := []GenConfig{
		{Inner: Config{Field: gf.MustNew(2)}, K: 0, GenSize: 1},
		{Inner: Config{Field: gf.MustNew(2)}, K: 4, GenSize: 0},
		{Inner: Config{Field: gf.MustNew(2)}, K: 4, GenSize: 5},
	}
	for _, cfg := range bad {
		if _, err := NewGenNode(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerationsAndBounds(t *testing.T) {
	cfg := genCfg(10, 4)
	if cfg.Generations() != 3 {
		t.Fatalf("Generations = %d, want 3", cfg.Generations())
	}
	lo, hi := cfg.genBounds(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("last generation bounds = [%d,%d), want [8,10)", lo, hi)
	}
}

// TestGenRoundTrip: a source with all messages coded in generations feeds a
// sink until it decodes all k with correct global indices and payloads.
func TestGenRoundTrip(t *testing.T) {
	for _, genSize := range []int{1, 3, 5, 10} {
		cfg := genCfg(10, genSize)
		rng := core.NewRand(uint64(genSize))
		src, err := NewGenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		msgs := make([]Message, cfg.K)
		for i := range msgs {
			msgs[i] = Message{Index: i, Payload: gf.RandBytes(cfg.Inner.Field, 4, rng)}
			src.Seed(msgs[i])
		}
		if !src.CanDecode() {
			t.Fatal("source must be full rank")
		}
		dst, err := NewGenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !dst.CanDecode() {
			steps++
			if steps > 20000 {
				t.Fatalf("genSize=%d: no convergence", genSize)
			}
			dst.Receive(src.Emit(rng))
		}
		got, err := dst.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != cfg.K {
			t.Fatalf("decoded %d messages", len(got))
		}
		for i, m := range got {
			if m.Index != i {
				t.Fatalf("message %d has index %d", i, m.Index)
			}
			for j := range m.Payload {
				if m.Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("genSize=%d: payload mismatch at (%d,%d)", genSize, i, j)
				}
			}
		}
	}
}

// TestGenerationFullDecodeEquivalence: for every supported field, the
// payload decoded through generation-based coding is identical to the
// payload decoded through full-span coding — generations change packet
// layout and decode cost, never the recovered data.
func TestGenerationFullDecodeEquivalence(t *testing.T) {
	const k, r = 12, 4
	for _, field := range gf.Fields() {
		t.Run(fmt.Sprintf("q%d", field.Order()), func(t *testing.T) {
			rng := core.NewRand(uint64(field.Order()))
			msgs := make([]Message, k)
			for i := range msgs {
				msgs[i] = Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
			}
			decode := func(genSize int) []Message {
				cfg := GenConfig{Inner: Config{Field: field, PayloadLen: r}, K: k, GenSize: genSize}
				src, err := NewGenNode(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range msgs {
					src.Seed(m)
				}
				dst, err := NewGenNode(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for guard := 0; !dst.CanDecode(); guard++ {
					if guard > 100000 {
						t.Fatalf("genSize=%d: no convergence", genSize)
					}
					dst.Receive(src.Emit(rng))
				}
				got, err := dst.Decode()
				if err != nil {
					t.Fatal(err)
				}
				return got
			}
			gen := decode(5) // generations of size 5, 5, 2
			full := decode(k)
			for i := 0; i < k; i++ {
				if gen[i].Index != i || full[i].Index != i {
					t.Fatalf("message %d decoded with index %d/%d", i, gen[i].Index, full[i].Index)
				}
				for j := 0; j < r; j++ {
					if gen[i].Payload[j] != msgs[i].Payload[j] {
						t.Fatalf("generation decode corrupted message %d symbol %d", i, j)
					}
					if full[i].Payload[j] != msgs[i].Payload[j] {
						t.Fatalf("full decode corrupted message %d symbol %d", i, j)
					}
				}
			}
		})
	}
}

func TestGenEmitEmpty(t *testing.T) {
	n, err := NewGenNode(genCfg(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if n.Emit(core.NewRand(1)) != nil {
		t.Fatal("empty node must emit nil")
	}
	if n.Receive(nil) {
		t.Fatal("nil packet must not help")
	}
}

func TestGenMessageBitsShrink(t *testing.T) {
	full := genCfg(64, 64).MessageBits()
	small := genCfg(64, 8).MessageBits()
	if small >= full {
		t.Fatalf("generation size 8 packet (%d bits) not smaller than full (%d bits)", small, full)
	}
}

func TestGenDecodeBeforeReady(t *testing.T) {
	n, err := NewGenNode(genCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	n.Seed(Message{Index: 0, Payload: make([]byte, 4)})
	if _, err := n.Decode(); err == nil {
		t.Fatal("decode before full rank must fail")
	}
}

// TestGenCouponCollectorEffect: with single-message generations (GenSize=1,
// i.e. uncoded-per-slot), the transfer takes more emissions than full
// coding because the random generation choice repeats finished generations.
func TestGenCouponCollectorEffect(t *testing.T) {
	transfers := func(genSize int) int {
		cfg := genCfg(24, genSize)
		total := 0
		for seed := uint64(0); seed < 5; seed++ {
			rng := core.NewRand(seed)
			src, _ := NewGenNode(cfg)
			for i := 0; i < cfg.K; i++ {
				src.Seed(Message{Index: i, Payload: gf.RandBytes(cfg.Inner.Field, 4, rng)})
			}
			dst, _ := NewGenNode(cfg)
			for !dst.CanDecode() {
				total++
				dst.Receive(src.Emit(rng))
			}
		}
		return total
	}
	single := transfers(1)
	full := transfers(24)
	if single <= full {
		t.Errorf("GenSize=1 (%d transfers) should pay a coupon-collector premium vs full coding (%d)",
			single, full)
	}
}
