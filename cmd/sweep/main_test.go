package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"algossip/internal/resultstore"
)

// goldenSweeps pins the exact CSV bytes the pre-harness cmd/sweep
// produced for fixed seeds, across protocols and time models. The
// harness refactor must keep fixed-seed output byte-identical, at every
// worker count.
var goldenSweeps = []struct {
	args []string
	want string
}{
	{
		args: []string{"-graph", "line", "-protocol", "ag", "-sizes", "8,12", "-trials", "2", "-seed", "5"},
		want: "graph,protocol,model,n,k,trial,rounds\n" +
			"line-8,uniform-ag,synchronous,8,4,0,20\n" +
			"line-8,uniform-ag,synchronous,8,4,1,20\n" +
			"line-12,uniform-ag,synchronous,12,6,0,28\n" +
			"line-12,uniform-ag,synchronous,12,6,1,24\n",
	},
	{
		args: []string{"-graph", "barbell", "-protocol", "tag", "-kmode", "n", "-sizes", "8,10", "-trials", "2", "-seed", "7"},
		want: "graph,protocol,model,n,k,trial,rounds\n" +
			"barbell-8,tag-brr,synchronous,8,8,0,38\n" +
			"barbell-8,tag-brr,synchronous,8,8,1,40\n" +
			"barbell-10,tag-brr,synchronous,10,10,0,52\n" +
			"barbell-10,tag-brr,synchronous,10,10,1,56\n",
	},
	// Dynamic-topology sweeps share the determinism contract: the CSV is
	// pinned byte-identical across worker counts and resume histories.
	{
		args: []string{"-graph", "torus", "-protocol", "ag", "-sizes", "9,16", "-trials", "2", "-seed", "5", "-dynamics", "edge:rate=0.2"},
		want: "graph,protocol,model,n,k,trial,rounds\n" +
			"torus-3x3,uniform-ag,synchronous,9,4,0,8\n" +
			"torus-3x3,uniform-ag,synchronous,9,4,1,7\n" +
			"torus-4x4,uniform-ag,synchronous,16,8,0,11\n" +
			"torus-4x4,uniform-ag,synchronous,16,8,1,12\n",
	},
	{
		args: []string{"-graph", "ring", "-protocol", "uncoded", "-sizes", "10", "-trials", "2", "-seed", "3", "-dynamics", "churn:rate=0.2,period=8"},
		want: "graph,protocol,model,n,k,trial,rounds\n" +
			"ring-10,uncoded,synchronous,10,5,0,61\n" +
			"ring-10,uncoded,synchronous,10,5,1,104\n",
	},
	{
		args: []string{"-graph", "grid", "-protocol", "uncoded", "-kmode", "sqrt", "-sizes", "9,16", "-trials", "3", "-seed", "11", "-model", "async"},
		want: "graph,protocol,model,n,k,trial,rounds\n" +
			"grid-3x3,uncoded,asynchronous,9,3,0,17\n" +
			"grid-3x3,uncoded,asynchronous,9,3,1,10\n" +
			"grid-3x3,uncoded,asynchronous,9,3,2,11\n" +
			"grid-4x4,uncoded,asynchronous,16,4,0,18\n" +
			"grid-4x4,uncoded,asynchronous,16,4,1,18\n" +
			"grid-4x4,uncoded,asynchronous,16,4,2,15\n",
	},
}

func TestSweepGoldenOutput(t *testing.T) {
	for _, g := range goldenSweeps {
		for _, workers := range []int{1, 4, 16} {
			args := append([]string{"-parallel", strconv.Itoa(workers)}, g.args...)
			var buf bytes.Buffer
			if err := run(args, &buf); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
			if buf.String() != g.want {
				t.Errorf("run(%v) output changed:\ngot:\n%swant:\n%s", args, buf.String(), g.want)
			}
		}
	}
}

func TestSweepEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep.csv")
	err := run([]string{
		"-graph", "line", "-protocol", "ag", "-sizes", "8,12",
		"-trials", "2", "-out", out, "-seed", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 2 sizes x 2 trials.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "graph,protocol,model,n,k,trial,rounds") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "line-8,uniform-ag,synchronous,8,4,0,") {
		t.Fatalf("bad row: %s", lines[1])
	}
}

func TestSweepJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{
		"-graph", "line", "-sizes", "8", "-trials", "1", "-json",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"graph": "line-8"`, `"rounds":`, `"trial": 0`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

func TestSweepResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	args := []string{"-graph", "line", "-sizes", "8,12", "-trials", "2",
		"-seed", "5", "-checkpoint", ckpt}

	var full bytes.Buffer
	if err := run(args, &full); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill: drop the checkpoint's tail, then resume.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short: %d lines", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:3], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Errorf("resumed output differs from uninterrupted run:\ngot:\n%swant:\n%s",
			resumed.String(), full.String())
	}
}

// TestSweepDynamicsResume: a dynamics sweep killed mid-run resumes to
// the identical output bytes.
func TestSweepDynamicsResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "dyn.ckpt")
	args := []string{"-graph", "torus", "-protocol", "ag", "-sizes", "9,16",
		"-trials", "2", "-seed", "5", "-dynamics", "edge:rate=0.2", "-checkpoint", ckpt}

	var full bytes.Buffer
	if err := run(args, &full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short: %d lines", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:3], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Errorf("resumed dynamics output differs:\ngot:\n%swant:\n%s",
			resumed.String(), full.String())
	}
	// A checkpoint written with different dynamics must be rejected.
	other := []string{"-graph", "torus", "-protocol", "ag", "-sizes", "9,16",
		"-trials", "2", "-seed", "5", "-dynamics", "edge:rate=0.4",
		"-checkpoint", ckpt, "-resume"}
	if err := run(other, os.Stdout); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign dynamics checkpoint accepted: %v", err)
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "bogus"},
		{"-graph", "bogus"},
		{"-sizes", "nope"},
		{"-kmode", "nope"},
		{"-trials", "0"},
		{"-resume"},                      // -resume without -checkpoint
		{"-dynamics", "bogus"},           // unknown schedule kind
		{"-dynamics", "edge:rate=1.5"},   // rate out of range
		{"-dynamics", "churn:period=-1"}, // bad cadence
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestSweepStoreIngest: -store mirrors the CSV rows into the result
// store, queryable by cell with tail quantiles and no CSV re-parsing.
func TestSweepStoreIngest(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-graph", "line", "-protocol", "ag", "-sizes", "8,12",
		"-trials", "2", "-seed", "5", "-store", storePath}, &buf); err != nil {
		t.Fatal(err)
	}
	store, err := resultstore.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ts, err := store.Tail(resultstore.Filter{Spec: "sweep", Graph: "line", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Golden rows for this seed: n=8 trials are 20,20.
	if ts.Trials != 2 || ts.Mean != 20 || ts.P99 != 20 || ts.Max != 20 {
		t.Fatalf("store tail = %+v", ts)
	}
	if cells := store.Cells(); len(cells) != 2 {
		t.Fatalf("store has %d cells, want 2", len(cells))
	}
}

// failWriter rejects every write, for write-error propagation tests.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestSweepPropagatesWriteErrors(t *testing.T) {
	err := run([]string{"-graph", "line", "-sizes", "8", "-trials", "1"}, failWriter{})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write error not propagated: %v", err)
	}
}

// TestProfileFlagsSmoke checks -cpuprofile/-memprofile/-trace write
// non-empty diagnostics files on clean exit without disturbing the CSV.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	trc := filepath.Join(dir, "trace.out")
	var buf bytes.Buffer
	args := []string{"-graph", "line", "-protocol", "ag", "-sizes", "8", "-trials", "1", "-seed", "5",
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", trc}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "graph,protocol,model,n,k,trial,rounds\n") {
		t.Fatalf("CSV output disturbed: %q", buf.String())
	}
	for _, path := range []string{cpu, mem, trc} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s missing: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

// TestProfileFlagBadPath: an unwritable profile path fails up front.
func TestProfileFlagBadPath(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "line", "-sizes", "8", "-trials", "1",
		"-cpuprofile", filepath.Join(t.TempDir(), "missing-dir", "cpu.pprof")}, &buf)
	if err == nil {
		t.Fatal("expected error for unwritable cpuprofile path")
	}
}
