package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("16, 32,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSizes = %v", got)
		}
	}
	for _, bad := range []string{"", "x", "16,1", "16,,32"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestPickK(t *testing.T) {
	tests := []struct {
		mode string
		n    int
		want int
	}{
		{"half", 64, 32},
		{"n", 64, 64},
		{"sqrt", 64, 8},
		{"sqrt", 10, 4},
		{"const:5", 100, 5},
	}
	for _, tt := range tests {
		got, err := pickK(tt.mode, tt.n)
		if err != nil || got != tt.want {
			t.Errorf("pickK(%q, %d) = %d, %v; want %d", tt.mode, tt.n, got, err, tt.want)
		}
	}
	for _, bad := range []string{"", "cube", "const:x", "const:0"} {
		if _, err := pickK(bad, 10); err == nil {
			t.Errorf("pickK(%q) accepted", bad)
		}
	}
}

func TestSweepEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep.csv")
	err := run([]string{
		"-graph", "line", "-protocol", "ag", "-sizes", "8,12",
		"-trials", "2", "-out", out, "-seed", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 2 sizes x 2 trials.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "graph,protocol,model,n,k,trial,rounds") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "line-8,uniform-ag,synchronous,8,4,0,") {
		t.Fatalf("bad row: %s", lines[1])
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-protocol", "bogus"}, os.Stdout); err == nil {
		t.Error("bogus protocol accepted")
	}
	if err := run([]string{"-graph", "bogus"}, os.Stdout); err == nil {
		t.Error("bogus graph accepted")
	}
	if err := run([]string{"-sizes", "nope"}, os.Stdout); err == nil {
		t.Error("bogus sizes accepted")
	}
	if err := run([]string{"-kmode", "nope"}, os.Stdout); err == nil {
		t.Error("bogus kmode accepted")
	}
}
