// Command sweep runs a parameter sweep of one protocol over one topology
// family and writes a CSV of stopping times, suitable for plotting the
// paper's scaling curves (rounds vs n, rounds vs k).
//
// Trials are independent simulations with independently derived seeds, so
// the sweep fans them out across a worker pool (-parallel, defaulting to
// all cores) and still writes rows in deterministic (size, trial) order —
// the CSV is byte-identical for any worker count.
//
// Usage:
//
//	sweep -graph barbell -protocol ag -sizes 16,32,64,128 -trials 5 -out barbell_ag.csv
//	sweep -graph line -protocol tag -kmode n -sizes 32,64,128 -parallel 8
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"algossip"
	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// job is one simulation of the sweep grid: size index si, trial index.
type job struct {
	si, trial int
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "barbell", "topology family (see gossipsim)")
		protoName = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName = fs.String("model", "sync", "time model: sync|async")
		sizesCSV  = fs.String("sizes", "16,32,64", "comma-separated node counts")
		kmode     = fs.String("kmode", "half", "k per size: half|n|sqrt|const:<v>")
		q         = fs.Int("q", 2, "field order")
		trials    = fs.Int("trials", 3, "trials per size")
		seed      = fs.Uint64("seed", 1, "root seed")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trials (<=1 runs sequentially)")
		out       = fs.String("out", "", "output CSV path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := algossip.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	model, err := core.ParseTimeModel(*modelName)
	if err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesCSV)
	if err != nil {
		return err
	}
	if *trials < 1 {
		return fmt.Errorf("trials must be positive, got %d", *trials)
	}

	// Build every (graph, k) cell up front; graph construction draws from
	// its own seed stream, so doing it here keeps trial workers pure.
	graphs := make([]*graph.Graph, len(sizes))
	ks := make([]int, len(sizes))
	for si, n := range sizes {
		g, err := graph.FromName(*graphName, n, core.NewRand(core.SplitSeed(*seed, 999)))
		if err != nil {
			return err
		}
		k, err := pickK(*kmode, g.N())
		if err != nil {
			return err
		}
		graphs[si] = g
		ks[si] = k
	}

	// Open the output before spending any compute, so an unwritable path
	// fails immediately instead of after the whole grid has run.
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"graph", "protocol", "model", "n", "k", "trial", "rounds"}); err != nil {
		return err
	}

	// Fan the (size, trial) grid out over the worker pool. Every trial's
	// seed depends only on (n, trial), so results are identical to the
	// sequential sweep for any worker count.
	jobs := make([]job, 0, len(sizes)**trials)
	for si := range sizes {
		for i := 0; i < *trials; i++ {
			jobs = append(jobs, job{si: si, trial: i})
		}
	}
	rounds := make([]int, len(jobs))
	errs := make([]error, len(jobs))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				j := jobs[ji]
				g := graphs[j.si]
				res, err := algossip.Run(algossip.Spec{
					Graph: g, K: ks[j.si], Protocol: proto, Model: model, Q: *q,
				}, core.SplitSeed(*seed, uint64(sizes[j.si]*1000+j.trial)))
				rounds[ji] = res.Rounds
				errs[ji] = err
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for ji := range jobs {
		if failed.Load() {
			break // an error is config-shaped; don't burn the rest of the grid
		}
		next <- ji
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	for ji, j := range jobs {
		g := graphs[j.si]
		rec := []string{g.Name(), proto.String(), model.String(),
			strconv.Itoa(g.N()), strconv.Itoa(ks[j.si]), strconv.Itoa(j.trial),
			strconv.Itoa(rounds[ji])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for si, g := range graphs {
		perSize := make([]float64, *trials)
		for i := 0; i < *trials; i++ {
			perSize[i] = float64(rounds[si**trials+i])
		}
		fmt.Fprintf(os.Stderr, "n=%-5d k=%-5d %s\n", g.N(), ks[si], stats.Summarize(perSize))
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickK(mode string, n int) (int, error) {
	switch {
	case mode == "half":
		return n / 2, nil
	case mode == "n":
		return n, nil
	case mode == "sqrt":
		k := 1
		for k*k < n {
			k++
		}
		return k, nil
	case strings.HasPrefix(mode, "const:"):
		v, err := strconv.Atoi(strings.TrimPrefix(mode, "const:"))
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad kmode %q", mode)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("unknown kmode %q", mode)
	}
}
