// Command sweep runs a parameter sweep of one protocol over one topology
// family and writes a CSV of stopping times, suitable for plotting the
// paper's scaling curves (rounds vs n, rounds vs k).
//
// The sweep is one internal/harness Spec: trials fan out across a worker
// pool (-parallel, defaulting to all cores) with per-trial derived
// seeds, and results are collected in deterministic (size, trial) order —
// the CSV is byte-identical for any worker count. Long sweeps are
// restartable: -checkpoint records every finished trial and -resume
// replays the file and runs only what is missing, producing the same
// output bytes as an uninterrupted run.
//
// Usage:
//
//	sweep -graph barbell -protocol ag -sizes 16,32,64,128 -trials 5 -out barbell_ag.csv
//	sweep -graph line -protocol tag -kmode n -sizes 32,64,128 -parallel 8
//	sweep -graph cliquechain -protocol tag-is -sizes 64,128,256 -trials 20 \
//	      -checkpoint sweep.ckpt -resume -progress
//	sweep -graph torus -protocol ag -sizes 36,64 -trials 10 \
//	      -dynamics edge:rate=0.25
//	sweep -graph complete -protocol ag -sizes 64,128 -trials 10 \
//	      -adversary byzantine:frac=0.1,mode=pollute -classes straggler:frac=0.2,slow=4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/harness"
	"algossip/internal/resultstore"
	"algossip/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		graphName  = fs.String("graph", "barbell", "topology family (see gossipsim)")
		protoName  = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName  = fs.String("model", "sync", "time model: sync|async")
		sizesCSV   = fs.String("sizes", "16,32,64", "comma-separated node counts")
		kmode      = fs.String("kmode", "half", "k per size: half|n|sqrt|const:<v>")
		q          = fs.Int("q", 2, "field order")
		dynamics   = fs.String("dynamics", "", "time-varying topology: kind[:key=val,...], e.g. edge:rate=0.2 | churn:rate=0.1,period=16 | rewire:rate=0.3,period=32 | burst:rate=0.5,period=64,burst=8 | grow:period=4")
		adversary  = fs.String("adversary", "", "Byzantine node population: byzantine:frac=<f>[,mode=pollute|replay|freeride|mix] (uniform AG only)")
		classes    = fs.String("classes", "", "heterogeneous node capabilities: straggler:frac=<f>[,slow=<s>] | tiered:frac=<f>[,boost=<b>] (uniform AG only)")
		gens       = fs.Int("generations", 0, "generation size g for generation-coded AG (0 = full-span coding)")
		shards     = fs.Int("shards", 0, "run each trial on this many shards (0 = classic serial engine; any positive count gives the same trajectory)")
		trials     = fs.Int("trials", 3, "trials per size")
		single     = fs.Bool("single-source", false, "seed all messages at node 0")
		seed       = fs.Uint64("seed", 1, "root seed")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trials (0 = all cores, 1 = sequential)")
		timeout    = fs.Duration("timeout", 0, "per-trial timeout (0 = none)")
		checkpoint = fs.String("checkpoint", "", "record finished trials to this file")
		resume     = fs.Bool("resume", false, "resume from -checkpoint instead of restarting it")
		storePath  = fs.String("store", "", "also ingest results into this result store (query with fabricd query)")
		progress   = fs.Bool("progress", false, "report per-trial progress on stderr")
		jsonOut    = fs.Bool("json", false, "write JSON instead of CSV")
		out        = fs.String("out", "", "output path (default stdout)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		traceFile  = fs.String("trace", "", "write a runtime/trace execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := harness.Profiles{
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Trace: *traceFile,
	}.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	proto, err := harness.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	model, err := core.ParseTimeModel(*modelName)
	if err != nil {
		return err
	}
	sizes, err := harness.ParseSizes(*sizesCSV)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	dyn, err := harness.ParseDynamics(*dynamics)
	if err != nil {
		return err
	}
	adv, err := harness.ParseAdversary(*adversary)
	if err != nil {
		return err
	}
	cls, err := harness.ParseClasses(*classes)
	if err != nil {
		return err
	}

	spec := harness.Spec{
		Name:         "sweep",
		Graph:        *graphName,
		Sizes:        sizes,
		KMode:        *kmode,
		Protocol:     proto,
		Model:        model,
		Q:            *q,
		Dynamics:     dyn,
		Adversary:    adv,
		Classes:      cls,
		GenSize:      *gens,
		Shards:       *shards,
		SingleSource: *single,
		Trials:       *trials,
		Seed:         *seed,
		// The CSV only reads Rounds; skip per-node detail so huge sweeps
		// stay lean in memory and in the checkpoint file.
		Lean: true,
	}
	runner := harness.Runner{
		Parallel:   *parallel,
		Timeout:    *timeout,
		Checkpoint: *checkpoint,
		Resume:     *resume,
	}
	if *progress {
		progressStart := time.Now()
		runner.Progress = func(done, total int, t harness.Trial, o harness.Outcome) {
			rate := float64(done) / time.Since(progressStart).Seconds()
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d trials (n=%d trial=%d: %d rounds, %.1f trials/sec)   ",
				done, total, t.Graph.N(), t.Num, o.Result.Rounds, rate)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// Open the output before spending any compute, so an unwritable path
	// fails immediately instead of after the whole grid has run.
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	rs, err := runner.Run(&spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		err = harness.WriteJSON(w, rs)
	} else {
		err = harness.WriteCSV(w, rs)
	}
	if err != nil {
		return err
	}
	if *storePath != "" {
		store, serr := resultstore.Open(*storePath)
		if serr != nil {
			return serr
		}
		if serr := store.Append(resultstore.FromResultSet(rs)...); serr != nil {
			_ = store.Close()
			return serr
		}
		if serr := store.Close(); serr != nil {
			return serr
		}
	}
	for ci, c := range rs.Cells {
		fmt.Fprintf(os.Stderr, "n=%-5d k=%-5d %s\n",
			c.Graph.N(), c.K, stats.Summarize(rs.CellRounds(ci)))
	}
	// Timing footer goes to stderr, never into the CSV/JSON data: the
	// output bytes stay a pure function of (Spec, seed).
	resumed := len(rs.Trials) - rs.Executed
	fmt.Fprintf(os.Stderr, "sweep: %d trials (%d executed, %d resumed) in %v, %.1f trials/sec [gf tier %s]\n",
		len(rs.Trials), rs.Executed, resumed, rs.Elapsed.Round(time.Millisecond), rs.TrialsPerSec(), gf.TierInfo())
	return nil
}
