// Command sweep runs a parameter sweep of one protocol over one topology
// family and writes a CSV of stopping times, suitable for plotting the
// paper's scaling curves (rounds vs n, rounds vs k).
//
// Usage:
//
//	sweep -graph barbell -protocol ag -sizes 16,32,64,128 -trials 5 -out barbell_ag.csv
//	sweep -graph line -protocol tag -kmode n -sizes 32,64,128
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"algossip"
	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "barbell", "topology family (see gossipsim)")
		protoName = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName = fs.String("model", "sync", "time model: sync|async")
		sizesCSV  = fs.String("sizes", "16,32,64", "comma-separated node counts")
		kmode     = fs.String("kmode", "half", "k per size: half|n|sqrt|const:<v>")
		q         = fs.Int("q", 2, "field order")
		trials    = fs.Int("trials", 3, "trials per size")
		seed      = fs.Uint64("seed", 1, "root seed")
		out       = fs.String("out", "", "output CSV path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := algossip.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	model, err := core.ParseTimeModel(*modelName)
	if err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesCSV)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"graph", "protocol", "model", "n", "k", "trial", "rounds"}); err != nil {
		return err
	}

	for _, n := range sizes {
		g, err := graph.FromName(*graphName, n, core.NewRand(core.SplitSeed(*seed, 999)))
		if err != nil {
			return err
		}
		k, err := pickK(*kmode, g.N())
		if err != nil {
			return err
		}
		var rounds []float64
		for i := 0; i < *trials; i++ {
			res, err := algossip.Run(algossip.Spec{
				Graph: g, K: k, Protocol: proto, Model: model, Q: *q,
			}, core.SplitSeed(*seed, uint64(n*1000+i)))
			if err != nil {
				return err
			}
			rounds = append(rounds, float64(res.Rounds))
			rec := []string{g.Name(), proto.String(), model.String(),
				strconv.Itoa(g.N()), strconv.Itoa(k), strconv.Itoa(i),
				strconv.Itoa(res.Rounds)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "n=%-5d k=%-5d %s\n", g.N(), k, stats.Summarize(rounds))
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickK(mode string, n int) (int, error) {
	switch {
	case mode == "half":
		return n / 2, nil
	case mode == "n":
		return n, nil
	case mode == "sqrt":
		k := 1
		for k*k < n {
			k++
		}
		return k, nil
	case strings.HasPrefix(mode, "const:"):
		v, err := strconv.Atoi(strings.TrimPrefix(mode, "const:"))
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad kmode %q", mode)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("unknown kmode %q", mode)
	}
}
