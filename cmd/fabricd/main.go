// Command fabricd is the distributed experiment fabric CLI: one binary
// that runs either side of a sweep spread across machines, plus a query
// tool over the result store it fills.
//
// The coordinator expands a sweep spec into its deterministic trial
// work-list and serves leases over HTTP; workers pull leases, run the
// trials, and stream fingerprinted results back. The merged CSV is
// byte-identical to `sweep -parallel 1` on the same flags, for any
// worker count and any worker failure history — a killed worker's lease
// expires and is re-run, and a restarted coordinator resumes from its
// checkpoint.
//
// Usage:
//
//	fabricd coordinator -graph ring -sizes 64,128 -trials 20 \
//	        -listen 127.0.0.1:9100 -checkpoint fab.ckpt \
//	        -store results.jsonl -out fab.csv
//	fabricd worker -coordinator http://127.0.0.1:9100 -parallel 8
//	fabricd status -coordinator http://127.0.0.1:9100
//	fabricd query -store results.jsonl -graph ring -n 128
//	fabricd query -store results.jsonl -cells
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"algossip/internal/core"
	"algossip/internal/fabric"
	"algossip/internal/harness"
	"algossip/internal/resultstore"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "fabricd: usage: fabricd {coordinator|worker|status|query} [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "coordinator":
		err = runCoordinator(os.Args[2:], os.Stdout)
	case "worker":
		err = runWorker(os.Args[2:], os.Stdout)
	case "status":
		err = runStatus(os.Args[2:], os.Stdout)
	case "query":
		err = runQuery(os.Args[2:], os.Stdout)
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricd:", err)
		os.Exit(1)
	}
}

// runCoordinator serves a sweep spec to workers and writes the merged
// CSV when the last trial lands.
func runCoordinator(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("coordinator", flag.ContinueOnError)
	var (
		graphName  = fs.String("graph", "barbell", "topology family (see gossipsim)")
		protoName  = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName  = fs.String("model", "sync", "time model: sync|async")
		sizesCSV   = fs.String("sizes", "16,32,64", "comma-separated node counts")
		kmode      = fs.String("kmode", "half", "k per size: half|n|sqrt|const:<v>")
		q          = fs.Int("q", 2, "field order")
		dynamics   = fs.String("dynamics", "", "time-varying topology: kind[:key=val,...]")
		gens       = fs.Int("generations", 0, "generation size g for generation-coded AG")
		shards     = fs.Int("shards", 0, "sharded engine shard count (0 = classic serial)")
		trials     = fs.Int("trials", 3, "trials per size")
		single     = fs.Bool("single-source", false, "seed all messages at node 0")
		seed       = fs.Uint64("seed", 1, "root seed")
		session    = fs.String("session", "", "fabric session label, recorded in the checkpoint fingerprint")
		listen     = fs.String("listen", "127.0.0.1:9100", "coordinator listen address")
		checkpoint = fs.String("checkpoint", "", "record accepted trials to this file")
		resume     = fs.Bool("resume", false, "resume from -checkpoint instead of restarting it")
		storePath  = fs.String("store", "", "ingest merged results into this result store")
		leaseChunk = fs.Int("lease-chunk", 0, "trials per lease (0 = default)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "lease expiry without renewal (0 = default 30s)")
		progress   = fs.Bool("progress", false, "report per-trial progress on stderr")
		jsonOut    = fs.Bool("json", false, "write JSON instead of CSV")
		out        = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := buildSpec(*graphName, *protoName, *modelName, *sizesCSV, *kmode,
		*dynamics, *q, *gens, *shards, *trials, *single, *seed, *session)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	var store *resultstore.Store
	if *storePath != "" {
		store, err = resultstore.Open(*storePath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	opts := fabric.CoordinatorOptions{
		Spec: spec, Listen: *listen,
		Checkpoint: *checkpoint, Resume: *resume,
		LeaseChunk: *leaseChunk, LeaseTTL: *leaseTTL,
		Store: store,
	}
	if *progress {
		start := time.Now()
		opts.Progress = func(done, total int) {
			rate := float64(done) / time.Since(start).Seconds()
			fmt.Fprintf(os.Stderr, "\rfabricd: %d/%d trials (%.1f trials/sec)   ", done, total, rate)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	c, err := fabric.NewCoordinator(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fabricd: coordinating %q on %s\n", spec.Name, c.Addr())

	// Open the output before serving a single lease, so an unwritable
	// path fails before any compute is spent.
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rs, err := c.Run(ctx)
	if err != nil {
		return err
	}
	if *jsonOut {
		err = harness.WriteJSON(w, rs)
	} else {
		err = harness.WriteCSV(w, rs)
	}
	if err != nil {
		return err
	}
	resumed := len(rs.Trials) - rs.Executed
	fmt.Fprintf(os.Stderr, "fabricd: %d trials (%d executed by workers, %d resumed) in %v\n",
		len(rs.Trials), rs.Executed, resumed, rs.Elapsed.Round(time.Millisecond))
	return nil
}

// buildSpec assembles the sweep-identical Spec from CLI flags — the
// flags mirror cmd/sweep so `fabricd coordinator` and `sweep` describe
// the same grid with the same words.
func buildSpec(graphName, protoName, modelName, sizesCSV, kmode, dynamics string,
	q, gens, shards, trials int, single bool, seed uint64, session string) (*harness.Spec, error) {
	proto, err := harness.ParseProtocol(protoName)
	if err != nil {
		return nil, err
	}
	model, err := core.ParseTimeModel(modelName)
	if err != nil {
		return nil, err
	}
	sizes, err := harness.ParseSizes(sizesCSV)
	if err != nil {
		return nil, err
	}
	dyn, err := harness.ParseDynamics(dynamics)
	if err != nil {
		return nil, err
	}
	return &harness.Spec{
		Name:         "sweep",
		Graph:        graphName,
		Sizes:        sizes,
		KMode:        kmode,
		Protocol:     proto,
		Model:        model,
		Q:            q,
		Dynamics:     dyn,
		GenSize:      gens,
		Shards:       shards,
		SingleSource: single,
		Trials:       trials,
		Seed:         seed,
		Fabric:       session,
		Lean:         true,
	}, nil
}

// runWorker pulls leases from a coordinator until the run completes.
func runWorker(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var (
		coord    = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:9100 (required)")
		name     = fs.String("name", "", "worker label (default host:pid)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trials")
		poll     = fs.Duration("poll", 0, "idle poll interval (0 = coordinator's hint)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("worker: -coordinator is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	n, err := fabric.RunWorker(ctx, fabric.WorkerOptions{
		Coordinator: *coord, Name: *name, Parallel: *parallel, PollInterval: *poll,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fabricd: worker %s executed %d trials\n", *name, n)
	return nil
}

// runStatus prints a coordinator's progress counters.
func runStatus(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("status: -coordinator is required")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(*coord + "/status")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status: %s: %s", resp.Status, body)
	}
	_, err = stdout.Write(body)
	return err
}

// runQuery answers "which cell regressed" from the result store without
// re-parsing any CSV: filter flags select cells, and the tail summary
// (P50/P90/P99/P99.9/max) prints per query.
func runQuery(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var (
		storePath = fs.String("store", "", "result store path (required)")
		specName  = fs.String("spec", "", "filter: spec name")
		graphName = fs.String("graph", "", "filter: topology family")
		n         = fs.Int("n", 0, "filter: node count")
		k         = fs.Int("k", 0, "filter: message count")
		q         = fs.Int("q", 0, "filter: field order")
		protoName = fs.String("protocol", "", "filter: protocol name as stored, e.g. uniform-ag")
		dynamics  = fs.String("dynamics", "", "filter: dynamics kind")
		gens      = fs.Int("generations", 0, "filter: generation size")
		rate      = fs.Float64("rate", -1, "filter: loss/failure rate (-1 = any)")
		cells     = fs.Bool("cells", false, "list every stored cell with trial counts instead of querying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("query: -store is required")
	}
	store, err := resultstore.Open(*storePath)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()

	if *cells {
		for _, cc := range store.Cells() {
			c := cc.Cell
			fmt.Fprintf(stdout, "graph=%-12s n=%-6d k=%-6d q=%-4d protocol=%-12s", c.Graph, c.N, c.K, c.Q, c.Protocol)
			if c.Dynamics != "" {
				fmt.Fprintf(stdout, " dyn=%s", c.Dynamics)
			}
			if c.Rate != 0 {
				fmt.Fprintf(stdout, " rate=%g", c.Rate)
			}
			if c.GenSize != 0 {
				fmt.Fprintf(stdout, " gens=%d", c.GenSize)
			}
			fmt.Fprintf(stdout, " trials=%d\n", cc.Trials)
		}
		return nil
	}

	f := resultstore.Filter{
		Spec: *specName, Graph: *graphName, N: *n, K: *k, Q: *q,
		Protocol: *protoName, Dynamics: *dynamics, GenSize: *gens,
	}
	if *rate >= 0 {
		f.Rate, f.HasRate = *rate, true
	}
	ts, err := store.Tail(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, ts)
	return nil
}
