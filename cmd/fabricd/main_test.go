package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenCSV is the pinned `sweep -graph line -protocol ag -sizes 8,12
// -trials 2 -seed 5` output (see cmd/sweep's golden table): the fabric
// CLI must reproduce it byte for byte through a real coordinator and
// worker.
const goldenCSV = "graph,protocol,model,n,k,trial,rounds\n" +
	"line-8,uniform-ag,synchronous,8,4,0,20\n" +
	"line-8,uniform-ag,synchronous,8,4,1,20\n" +
	"line-12,uniform-ag,synchronous,12,6,0,28\n" +
	"line-12,uniform-ag,synchronous,12,6,1,24\n"

// freeAddr reserves an ephemeral port and releases it for the
// coordinator to rebind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func waitServing(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/status")
		if err == nil {
			_ = resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator at %s never started serving", base)
}

func TestFabricdEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	out := filepath.Join(dir, "fab.csv")
	storePath := filepath.Join(dir, "results.jsonl")
	ckpt := filepath.Join(dir, "fab.ckpt")

	coordDone := make(chan error, 1)
	go func() {
		coordDone <- runCoordinator([]string{
			"-graph", "line", "-protocol", "ag", "-sizes", "8,12",
			"-trials", "2", "-seed", "5", "-session", "ci",
			"-listen", addr, "-checkpoint", ckpt,
			"-store", storePath, "-out", out, "-lease-chunk", "2",
		}, io.Discard)
	}()
	waitServing(t, "http://"+addr)

	var wbuf bytes.Buffer
	if err := runWorker([]string{
		"-coordinator", "http://" + addr, "-parallel", "2", "-name", "w0",
	}, &wbuf); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if !strings.Contains(wbuf.String(), "executed 4 trials") {
		t.Fatalf("worker summary = %q", wbuf.String())
	}

	// The coordinator lingers after completion; status must report the
	// finished counters while it does.
	var sbuf bytes.Buffer
	if err := runStatus([]string{"-coordinator", "http://" + addr}, &sbuf); err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(sbuf.String(), `"done":4`) {
		t.Fatalf("status = %q", sbuf.String())
	}

	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != goldenCSV {
		t.Fatalf("fabric CSV differs from the sweep golden:\ngot:\n%swant:\n%s", data, goldenCSV)
	}

	// The store answers the tail query without touching the CSV.
	var qbuf bytes.Buffer
	if err := runQuery([]string{
		"-store", storePath, "-spec", "sweep", "-graph", "line", "-n", "8",
	}, &qbuf); err != nil {
		t.Fatalf("query: %v", err)
	}
	if q := qbuf.String(); !strings.Contains(q, "trials=2") || !strings.Contains(q, "p99=20.0") {
		t.Fatalf("query output = %q", q)
	}
	var cbuf bytes.Buffer
	if err := runQuery([]string{"-store", storePath, "-cells"}, &cbuf); err != nil {
		t.Fatalf("query -cells: %v", err)
	}
	if lines := strings.Count(cbuf.String(), "\n"); lines != 2 {
		t.Fatalf("query -cells printed %d cells, want 2:\n%s", lines, cbuf.String())
	}
}

func TestFabricdRejectsBadFlags(t *testing.T) {
	if err := runCoordinator([]string{"-protocol", "bogus"}, io.Discard); err == nil {
		t.Error("bogus protocol accepted")
	}
	if err := runCoordinator([]string{"-resume"}, io.Discard); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := runWorker([]string{}, io.Discard); err == nil {
		t.Error("worker without -coordinator accepted")
	}
	if err := runStatus([]string{}, io.Discard); err == nil {
		t.Error("status without -coordinator accepted")
	}
	if err := runQuery([]string{}, io.Discard); err == nil {
		t.Error("query without -store accepted")
	}
}
