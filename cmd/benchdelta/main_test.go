package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: algossip/internal/gf
BenchmarkAddMulScalarGF256-8   	  500000	      2100.0 ns/op	 121.9 MB/s
BenchmarkAddMulSliceGF256-8    	 3000000	       350.5 ns/op	 730.4 MB/s
BenchmarkAddMulSliceGF2-8      	20000000	        10.2 ns/op
PASS
ok  	algossip/internal/gf	2.511s
BenchmarkDecode-8              	   10000	    105000 ns/op
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d entries, want 4: %v", len(got), got)
	}
	e := got["BenchmarkAddMulSliceGF256"]
	if e.NsPerOp != 350.5 || e.MBPerS != 730.4 {
		t.Fatalf("bad entry: %+v", e)
	}
	if got["BenchmarkDecode"].NsPerOp != 105000 {
		t.Fatalf("bad decode entry: %+v", got["BenchmarkDecode"])
	}
}

func TestParseBenchKeepsBestRun(t *testing.T) {
	in := "BenchmarkX-8  10  200.0 ns/op\nBenchmarkX-8  10  150.0 ns/op\nBenchmarkX-8  10  180.0 ns/op\n"
	got, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 150.0 {
		t.Fatalf("want best run 150.0, got %+v", got["BenchmarkX"])
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkStable":   {NsPerOp: 100},
		"BenchmarkSlower":   {NsPerOp: 100},
		"BenchmarkFaster":   {NsPerOp: 100},
		"BenchmarkVanished": {NsPerOp: 100},
	}
	fresh := map[string]Entry{
		"BenchmarkStable": {NsPerOp: 110}, // +10% — inside 20% tolerance
		"BenchmarkSlower": {NsPerOp: 130}, // +30% — regression
		"BenchmarkFaster": {NsPerOp: 50},  // improved
		"BenchmarkNew":    {NsPerOp: 42},  // no baseline
	}
	report, regressions, missing := Compare(base, fresh, 0.20)
	if regressions != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", regressions, report)
	}
	if missing != 1 {
		t.Fatalf("want 1 missing, got %d:\n%s", missing, report)
	}
	for _, want := range []string{"REGRESSION", "improved", "new (no baseline)", "MISSING from this run"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestMissingBenchmarksFailGate: a bench run that crashed partway (so
// baseline entries have no fresh numbers) must fail the gate, not pass
// with a shrug.
func TestMissingBenchmarksFailGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// Fresh run lost the rlnc half of the suite.
	truncated := strings.Split(sampleBench, "BenchmarkDecode")[0]
	var sb strings.Builder
	err := run([]string{"-baseline", baseline}, strings.NewReader(truncated), &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("partial bench run passed the gate: %v\n%s", err, sb.String())
	}
}

func TestEndToEndGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	outFile := filepath.Join(dir, "new.json")

	// 1. -update creates the baseline from a run.
	var sb strings.Builder
	if err := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatal(err)
	}

	// 2. An identical run passes the gate and writes the artifact.
	sb.Reset()
	if err := run([]string{"-baseline", baseline, "-out", outFile},
		strings.NewReader(sampleBench), &sb); err != nil {
		t.Fatalf("identical run failed gate: %v\n%s", err, sb.String())
	}
	if _, err := os.Stat(outFile); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	// 3. A >20% slowdown fails the gate.
	slow := strings.ReplaceAll(sampleBench, "350.5 ns/op", "900.0 ns/op")
	sb.Reset()
	err := run([]string{"-baseline", baseline}, strings.NewReader(slow), &sb)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not caught: %v\n%s", err, sb.String())
	}

	// 4. The same slowdown passes with a huge tolerance.
	sb.Reset()
	if err := run([]string{"-baseline", baseline, "-tolerance", "2.0"},
		strings.NewReader(slow), &sb); err != nil {
		t.Fatalf("tolerance not honored: %v", err)
	}
}

func TestMissingBaselineErrors(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", filepath.Join(t.TempDir(), "none.json")},
		strings.NewReader(sampleBench), &sb)
	if err == nil || !strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing baseline not explained: %v", err)
	}
}

func TestEmptyInputErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader("no benches here\n"), &sb); err == nil {
		t.Fatal("empty input accepted")
	}
}

func fptr(v float64) *float64 { return &v }

// TestParseBenchmem covers -benchmem lines, including custom metrics
// sitting between ns/op and the B/op pair, and zero allocs/op.
func TestParseBenchmem(t *testing.T) {
	in := strings.NewReader(`
BenchmarkSimUniformAG/complete/n=256/gf=2-8   1   30731284 ns/op   78.60 rounds   1792800 B/op   2596 allocs/op
BenchmarkSteadyState-8   1000000   105.0 ns/op   0 B/op   0 allocs/op
BenchmarkKernelOnly-8   123456   987.6 ns/op   259.3 MB/s
`)
	got, err := ParseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	sim := got["BenchmarkSimUniformAG/complete/n=256/gf=2"]
	if sim.AllocsPerOp == nil || *sim.AllocsPerOp != 2596 {
		t.Fatalf("sim allocs = %v, want 2596", sim.AllocsPerOp)
	}
	if sim.BytesPerOp == nil || *sim.BytesPerOp != 1792800 {
		t.Fatalf("sim B/op = %v, want 1792800", sim.BytesPerOp)
	}
	steady := got["BenchmarkSteadyState"]
	if steady.AllocsPerOp == nil || *steady.AllocsPerOp != 0 {
		t.Fatalf("zero allocs must parse as present-and-zero, got %v", steady.AllocsPerOp)
	}
	if kern := got["BenchmarkKernelOnly"]; kern.AllocsPerOp != nil {
		t.Fatalf("no-benchmem line must leave allocs nil, got %v", *kern.AllocsPerOp)
	}
}

// TestParseBenchmemKeepsMin: with -count > 1, the merged entry keeps the
// minimum allocs/op across runs.
func TestParseBenchmemKeepsMin(t *testing.T) {
	in := strings.NewReader(`
BenchmarkX-8   1   200 ns/op   10 B/op   3 allocs/op
BenchmarkX-8   1   100 ns/op   12 B/op   2 allocs/op
BenchmarkX-8   1   150 ns/op   11 B/op   4 allocs/op
`)
	got, err := ParseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkX"]
	if e.NsPerOp != 100 || *e.AllocsPerOp != 2 || *e.BytesPerOp != 10 {
		t.Fatalf("merged entry = %+v (allocs %v bytes %v), want ns=100 allocs=2 bytes=10",
			e, *e.AllocsPerOp, *e.BytesPerOp)
	}
}

// TestCompareAllocRegression: any allocs/op increase fails the gate even
// when ns/op is within tolerance; absent alloc data on either side never
// gates.
func TestCompareAllocRegression(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: fptr(5)},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: fptr(5)},
		"BenchmarkC": {NsPerOp: 100}, // baseline without -benchmem data
	}
	fresh := map[string]Entry{
		"BenchmarkA": {NsPerOp: 101, AllocsPerOp: fptr(6)}, // ns fine, allocs up
		"BenchmarkB": {NsPerOp: 99, AllocsPerOp: fptr(5)},  // unchanged
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: fptr(999)},
	}
	report, regressions, missing := Compare(base, fresh, 0.20)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (alloc-only regression)\n%s", regressions, report)
	}
	if missing != 0 {
		t.Fatalf("missing = %d, want 0", missing)
	}
	if !strings.Contains(report, "ALLOC REGRESSION (5 -> 6 allocs/op)") {
		t.Fatalf("report lacks alloc verdict:\n%s", report)
	}
}

// TestAllocsRoundTripJSON: zero allocs/op survives the baseline JSON
// round trip (omitempty must not erase a measured zero).
func TestAllocsRoundTripJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := writeBaseline(path, map[string]Entry{
		"BenchmarkZ": {NsPerOp: 50, AllocsPerOp: fptr(0)},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	e := b.Benchmarks["BenchmarkZ"]
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("zero allocs lost in round trip: %v", e.AllocsPerOp)
	}
}

// TestCompareCombinedRegressionCountsOnce: a benchmark that regresses in
// both ns/op and allocs/op counts as one regression, and the report
// names both failures.
func TestCompareCombinedRegressionCountsOnce(t *testing.T) {
	base := map[string]Entry{"BenchmarkBoth": {NsPerOp: 100, AllocsPerOp: fptr(5)}}
	fresh := map[string]Entry{"BenchmarkBoth": {NsPerOp: 200, AllocsPerOp: fptr(6)}}
	report, regressions, _ := Compare(base, fresh, 0.20)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 for a single doubly-regressed benchmark\n%s", regressions, report)
	}
	if !strings.Contains(report, "REGRESSION + ALLOC REGRESSION (5 -> 6 allocs/op)") {
		t.Fatalf("report must name both failures:\n%s", report)
	}
}

// TestHistoryAppend: -history appends one JSONL record per benchmark per
// run (commit, name, ns/op, B/op, allocs/op), so repeated runs build the
// machine-readable perf trajectory.
func TestHistoryAppend(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "traj.jsonl")
	baseline := filepath.Join(dir, "base.json")
	in := "BenchmarkA-8  10  200.0 ns/op  128 B/op  3 allocs/op\nBenchmarkB-8  10  90.0 ns/op\n"
	// First run creates the baseline and the history file.
	if err := run([]string{"-baseline", baseline, "-update", "-history", hist, "-commit", "c0ffee1"},
		strings.NewReader(in), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// Second run (compare mode) appends.
	if err := run([]string{"-baseline", baseline, "-history", hist, "-commit", "c0ffee2"},
		strings.NewReader(in), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("history has %d lines, want 4:\n%s", len(lines), data)
	}
	// Sorted by name within a run, commit stamped per run.
	if !strings.Contains(lines[0], `"commit":"c0ffee1"`) || !strings.Contains(lines[0], `"bench":"BenchmarkA"`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[0], `"ns_per_op":200`) || !strings.Contains(lines[0], `"b_per_op":128`) || !strings.Contains(lines[0], `"allocs_per_op":3`) {
		t.Fatalf("line 0 missing fields: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"bench":"BenchmarkB"`) || strings.Contains(lines[1], "b_per_op") {
		t.Fatalf("line 1 = %s", lines[1])
	}
	if !strings.Contains(lines[2], `"commit":"c0ffee2"`) {
		t.Fatalf("line 2 = %s", lines[2])
	}
}
