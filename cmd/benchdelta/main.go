// Command benchdelta is CI's performance gate: it parses `go test
// -bench` output, compares each benchmark's ns/op against a checked-in
// baseline with a relative tolerance — and, when both sides carry
// -benchmem data, fails on any allocs/op increase at all (allocation
// counts are deterministic for fixed-seed workloads, so there is no
// noise to tolerate). Two baselines are gated in CI: the coding kernels
// (BENCH_BASELINE.json, ./internal/gf ./internal/rlnc) and the
// whole-simulation macro suite (BENCH_SIM.json, root BenchmarkSim*).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 200ms ./internal/gf ./internal/rlnc \
//	    | go run ./cmd/benchdelta -baseline BENCH_BASELINE.json -out bench_new.json
//
//	go test -run '^$' -bench '^BenchmarkSim' -benchmem -benchtime 1x -count 3 . \
//	    | go run ./cmd/benchdelta -baseline BENCH_SIM.json -out bench_sim_new.json
//
//	# refresh a baseline after an intentional perf change:
//	... | go run ./cmd/benchdelta -baseline BENCH_SIM.json -update
//
//	# additionally append this run to the machine-readable perf trajectory
//	# (one JSON line per benchmark: commit, name, ns/op, B/op, allocs/op):
//	... | go run ./cmd/benchdelta -baseline BENCH_SIM.json -history BENCH_TRAJECTORY.jsonl
//
// A benchmark regresses when new_ns > old_ns * (1 + tolerance), or when
// new_allocs > old_allocs (any amount). New benchmarks (absent from the
// baseline) and improvements are reported but never fail the gate; the
// -out file always carries the fresh numbers so CI can upload them as
// an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"algossip/internal/gf"
)

// Baseline is the checked-in benchmark reference.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note,omitempty"`
	// Benchmarks maps normalized benchmark name to its reference numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark measurement. AllocsPerOp and BytesPerOp are
// pointers so "not measured" (no -benchmem) is distinguishable from a
// genuine zero — zero allocations is exactly what the hot-path gate
// pins.
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      float64  `json:"mb_per_s,omitempty"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "checked-in baseline JSON")
		inPath       = fs.String("in", "", "bench output file (default stdin)")
		outPath      = fs.String("out", "", "write the fresh numbers as JSON to this path")
		tolerance    = fs.Float64("tolerance", 0.20, "relative ns/op regression tolerance")
		update       = fs.Bool("update", false, "rewrite the baseline with the fresh numbers instead of comparing")
		historyPath  = fs.String("history", "", "append one JSONL record per benchmark (commit, name, ns/op, B/op, allocs/op, gf tier) to this file")
		commit       = fs.String("commit", "", "commit id recorded in -history lines (default: git rev-parse --short HEAD)")
		tier         = fs.String("tier", gf.TierInfo(), "gf kernel tier string recorded in -history lines (default: this process's tier + CPU features; override when the bench log came from another machine)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fresh, err := ParseBench(in)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if *outPath != "" {
		if err := writeBaseline(*outPath, fresh); err != nil {
			return err
		}
	}
	if *historyPath != "" {
		if err := appendHistory(*historyPath, resolveCommit(*commit), *tier, fresh); err != nil {
			return err
		}
	}
	if *update {
		if err := writeBaseline(*baselinePath, fresh); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "baseline %s updated with %d benchmarks\n", *baselinePath, len(fresh))
		return nil
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		return err
	}
	report, regressions, missing := Compare(base.Benchmarks, fresh, *tolerance)
	fmt.Fprint(stdout, report)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% tolerance", regressions, *tolerance*100)
	}
	if missing > 0 {
		// A baseline entry with no fresh measurement means either the
		// bench run crashed partway or a benchmark was renamed/deleted;
		// both must be explicit (-update), never silent.
		return fmt.Errorf("%d baseline benchmark(s) missing from this run (crashed bench or rename? refresh with -update)", missing)
	}
	return nil
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkAddMulSliceGF256-8   123456   987.6 ns/op   259.3 MB/s
//	BenchmarkSimUniformAG/complete/n=256/gf=2-8   1   30731284 ns/op   78.60 rounds   1792800 B/op   2596 allocs/op
//
// Custom metrics (like "rounds") may sit between ns/op and the
// -benchmem pair, so the B/op capture is anchored lazily.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op(?:\s+([0-9.eE+]+) MB/s)?(?:.*?\s([0-9.eE+]+) B/op\s+([0-9.eE+]+) allocs/op)?`)

// ParseBench extracts benchmark entries from `go test -bench` output,
// normalizing names by stripping the GOMAXPROCS suffix. A benchmark that
// appears multiple times (-count > 1) keeps its best (lowest) ns/op and
// allocs/op across runs, which damps scheduler and GC-timing noise.
func ParseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := Entry{NsPerOp: ns}
		if m[3] != "" {
			e.MBPerS, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" && m[5] != "" {
			if b, err := strconv.ParseFloat(m[4], 64); err == nil {
				e.BytesPerOp = &b
			}
			if a, err := strconv.ParseFloat(m[5], 64); err == nil {
				e.AllocsPerOp = &a
			}
		}
		old, ok := out[m[1]]
		if !ok {
			out[m[1]] = e
			continue
		}
		merged := old
		if e.NsPerOp < old.NsPerOp {
			merged.NsPerOp, merged.MBPerS = e.NsPerOp, e.MBPerS
		}
		merged.BytesPerOp = minPtr(old.BytesPerOp, e.BytesPerOp)
		merged.AllocsPerOp = minPtr(old.AllocsPerOp, e.AllocsPerOp)
		out[m[1]] = merged
	}
	return out, sc.Err()
}

// minPtr merges two optional measurements, keeping the smaller when both
// are present.
func minPtr(a, b *float64) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case *b < *a:
		return b
	default:
		return a
	}
}

// Compare renders a benchstat-style delta table and counts regressions
// — fresh entries whose ns/op exceeds the baseline by more than
// tolerance, or whose allocs/op exceeds the baseline at all (allocation
// counts are deterministic; any increase is a leak into the hot path) —
// and missing entries (baseline benchmarks absent from the fresh run: a
// crashed bench binary or a rename).
func Compare(base, fresh map[string]Entry, tolerance float64) (string, int, int) {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	regressions := 0
	fmt.Fprintf(&sb, "%-52s %12s %12s %8s %12s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	for _, name := range names {
		f := fresh[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(&sb, "%-52s %12s %12.1f %8s %12s  new (no baseline)\n", name, "-", f.NsPerOp, "-", allocsCell(f.AllocsPerOp))
			continue
		}
		delta := (f.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		switch {
		case delta > tolerance:
			verdict = "REGRESSION"
		case delta < -tolerance:
			verdict = "improved"
		}
		if b.AllocsPerOp != nil && f.AllocsPerOp != nil && *f.AllocsPerOp > *b.AllocsPerOp {
			allocNote := fmt.Sprintf("ALLOC REGRESSION (%.0f -> %.0f allocs/op)", *b.AllocsPerOp, *f.AllocsPerOp)
			if verdict == "REGRESSION" {
				verdict = "REGRESSION + " + allocNote
			} else {
				verdict = allocNote
			}
		}
		// One benchmark counts once, however many ways it regressed.
		if strings.Contains(verdict, "REGRESSION") {
			regressions++
		}
		fmt.Fprintf(&sb, "%-52s %12.1f %12.1f %+7.1f%% %12s  %s\n",
			name, b.NsPerOp, f.NsPerOp, delta*100, allocsCell(f.AllocsPerOp), verdict)
	}
	missing := 0
	missingNames := make([]string, 0)
	for name := range base {
		if _, ok := fresh[name]; !ok {
			missingNames = append(missingNames, name)
			missing++
		}
	}
	sort.Strings(missingNames)
	for _, name := range missingNames {
		fmt.Fprintf(&sb, "%-52s MISSING from this run (crashed bench or rename?)\n", name)
	}
	return sb.String(), regressions, missing
}

// allocsCell renders the optional allocs/op column.
func allocsCell(a *float64) string {
	if a == nil {
		return "-"
	}
	return strconv.FormatFloat(*a, 'f', 0, 64)
}

// HistoryEntry is one perf-trajectory record: a benchmark's numbers at a
// commit. The trajectory file is JSONL — append-only, one record per
// benchmark per recorded run — so tooling can chart ns/op across PRs
// without parsing bench logs.
type HistoryEntry struct {
	Commit      string   `json:"commit"`
	Bench       string   `json:"bench"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Tier records the GF kernel dispatch tier and CPU features the
	// numbers were measured under (e.g. "gfni (avx2 gfni ssse3)"), so a
	// trajectory step caused by a different kernel level is attributable
	// without chasing runner hardware.
	Tier string `json:"gf_tier,omitempty"`
}

// resolveCommit returns the explicit commit id, or asks git, or falls
// back to "unknown" (the trajectory stays useful even outside a repo).
func resolveCommit(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendHistory appends one JSONL record per benchmark, sorted by name
// for deterministic output.
func appendHistory(path, commit, tier string, fresh map[string]Entry) error {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		e := fresh[name]
		rec := HistoryEntry{
			Commit: commit, Bench: name,
			NsPerOp: e.NsPerOp, BytesPerOp: e.BytesPerOp, AllocsPerOp: e.AllocsPerOp,
			Tier: tier,
		}
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("reading baseline: %w (run with -update to create it)", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return b, nil
}

func writeBaseline(path string, fresh map[string]Entry) error {
	b := Baseline{
		Note:       "benchmark reference for CI's bench-delta gate; refresh by piping the matching `go test -bench` run into `go run ./cmd/benchdelta -baseline <file> -update` after an intentional perf change",
		Benchmarks: fresh,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
