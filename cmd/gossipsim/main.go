// Command gossipsim runs one gossip simulation and prints its stopping
// time, the analytic bound it is compared against, and per-trial detail.
// Trials are independent and fan out over the internal/harness worker
// pool (-parallel); the printed report is identical for any worker count.
//
// Usage:
//
//	gossipsim -graph barbell -n 64 -k 64 -protocol tag -model sync -trials 5
//
// Graphs: line, ring, grid, torus, complete, star, bintree, barbell,
// lollipop, cliquechain, hypercube, er, randreg.
// Protocols: ag (uniform algebraic gossip), tag (TAG+B_RR), tag-uniform,
// tag-is, uncoded.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		graphName  = fs.String("graph", "grid", "topology family")
		n          = fs.Int("n", 64, "number of nodes (approximate for grid/bintree)")
		k          = fs.Int("k", 0, "number of messages (default n/2)")
		protoName  = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName  = fs.String("model", "sync", "time model: sync|async")
		q          = fs.Int("q", 2, "field order")
		action     = fs.String("action", "exchange", "action: push|pull|exchange")
		dynamics   = fs.String("dynamics", "", "time-varying topology: kind[:key=val,...], e.g. edge:rate=0.2 | churn:rate=0.1,period=16")
		adversary  = fs.String("adversary", "", "Byzantine node population: byzantine:frac=<f>[,mode=pollute|replay|freeride|mix] (uniform AG only)")
		classes    = fs.String("classes", "", "heterogeneous node capabilities: straggler:frac=<f>[,slow=<s>] | tiered:frac=<f>[,boost=<b>] (uniform AG only)")
		gens       = fs.Int("generations", 0, "generation size g for generation-coded AG (0 = full-span coding)")
		shards     = fs.Int("shards", 0, "run each trial on this many shards (0 = classic serial engine; any positive count gives the same trajectory)")
		seed       = fs.Uint64("seed", 1, "root seed")
		trials     = fs.Int("trials", 3, "number of trials")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trials (0 = all cores, 1 = sequential)")
		single     = fs.Bool("single-source", false, "seed all messages at node 0")
		detail     = fs.Bool("detail", false, "print traffic counters and completion quantiles")
		traceCSV   = fs.String("tracecsv", "", "write per-node completion rounds to this CSV file")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		traceFile  = fs.String("trace", "", "write a runtime/trace execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := harness.Profiles{
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Trace: *traceFile,
	}.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	g, err := graph.FromName(*graphName, *n, core.NewRand(core.SplitSeed(*seed, 999)))
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = g.N() / 2
	}
	proto, err := harness.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	model, err := core.ParseTimeModel(*modelName)
	if err != nil {
		return err
	}
	act, err := core.ParseAction(*action)
	if err != nil {
		return err
	}
	dyn, err := harness.ParseDynamics(*dynamics)
	if err != nil {
		return err
	}
	adv, err := harness.ParseAdversary(*adversary)
	if err != nil {
		return err
	}
	cls, err := harness.ParseClasses(*classes)
	if err != nil {
		return err
	}

	// All writes go through the fail-fast writer: a broken pipe or full
	// disk surfaces as a non-zero exit instead of being dropped.
	w := harness.NewFailFastWriter(stdout)

	diam := g.Diameter()
	delta := g.MaxDegree()
	fmt.Fprintf(w, "graph=%s n=%d m=%d D=%d Δ=%d | protocol=%v model=%v k=%d q=%d action=%v",
		g.Name(), g.N(), g.M(), diam, delta, proto, model, *k, *q, act)
	if !dyn.IsStatic() {
		fmt.Fprintf(w, " dynamics=%s", dyn)
	}
	if adv != nil {
		fmt.Fprintf(w, " adversary=%s", adv)
	}
	if cls != nil {
		fmt.Fprintf(w, " classes=%s", cls)
	}
	if *gens > 0 {
		fmt.Fprintf(w, " generations=%d", *gens)
	}
	fmt.Fprintln(w)

	// One harness Spec: a single (graph, k) cell, -trials trials, with the
	// historical per-trial seed layout SplitSeed(seed, trial).
	rootSeed := *seed
	spec := harness.Spec{
		Name:         "gossipsim",
		Graphs:       []*graph.Graph{g},
		Ks:           []int{*k},
		Protocol:     proto,
		Model:        model,
		Q:            *q,
		Action:       act,
		Dynamics:     dyn,
		Adversary:    adv,
		Classes:      cls,
		GenSize:      *gens,
		Shards:       *shards,
		SingleSource: *single,
		Trials:       *trials,
		Seed:         rootSeed,
		TrialSeed: func(size, trial int) uint64 {
			return core.SplitSeed(rootSeed, uint64(trial))
		},
	}
	rs, err := harness.Runner{Parallel: *parallel}.Run(&spec)
	if err != nil {
		return err
	}

	var rounds []float64
	for i, t := range rs.Trials {
		o := rs.Outcomes[i]
		fmt.Fprintf(w, "  trial %d: %d rounds\n", t.Num, o.Result.Rounds)
		if *detail {
			done := make([]float64, 0, len(o.NodeDoneRounds))
			for _, r := range o.NodeDoneRounds {
				done = append(done, float64(r))
			}
			fmt.Fprintf(w, "    traffic: %s | message size %d bits\n", o.Traffic, o.MessageBits)
			fmt.Fprintf(w, "    node completion: %s\n", stats.Summarize(done))
			if o.TreeRounds >= 0 {
				fmt.Fprintf(w, "    spanning tree complete at round %d\n", o.TreeRounds)
			}
		}
		if *traceCSV != "" && t.Num == 0 {
			if err := writeTraceCSV(*traceCSV, o.NodeDoneRounds); err != nil {
				return err
			}
			fmt.Fprintf(w, "    wrote per-node completion rounds to %s\n", *traceCSV)
		}
		rounds = append(rounds, float64(o.Result.Rounds))
	}
	s := stats.Summarize(rounds)
	fmt.Fprintf(w, "stopping time: %s\n", s)
	bound := float64(*k+diam+int(math.Log2(float64(g.N())))+1) * float64(delta)
	fmt.Fprintf(w, "Theorem 1 reference (k+log n+D)·Δ = %.0f  (measured mean / bound = %.2f)\n",
		bound, s.Mean/bound)
	// Timing footer goes to stderr so the stdout report stays a pure
	// function of the flags and seed.
	fmt.Fprintf(os.Stderr, "gossipsim: %d trials in %v, %.1f trials/sec [gf tier %s]\n",
		rs.Executed, rs.Elapsed.Round(time.Millisecond), rs.TrialsPerSec(), gf.TierInfo())
	return w.Err()
}

// writeTraceCSV dumps per-node completion rounds as "node,round" rows.
func writeTraceCSV(path string, doneRounds []int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"node", "round"}); err != nil {
		return err
	}
	for v, r := range doneRounds {
		if err := w.Write([]string{strconv.Itoa(v), strconv.Itoa(r)}); err != nil {
			return err
		}
	}
	return w.Error()
}
