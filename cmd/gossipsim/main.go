// Command gossipsim runs one gossip simulation and prints its stopping
// time, the analytic bound it is compared against, and per-trial detail.
//
// Usage:
//
//	gossipsim -graph barbell -n 64 -k 64 -protocol tag -model sync -trials 5
//
// Graphs: line, ring, grid, torus, complete, star, bintree, barbell,
// lollipop, cliquechain, hypercube, er, randreg.
// Protocols: ag (uniform algebraic gossip), tag (TAG+B_RR), tag-uniform,
// tag-is, uncoded.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"algossip"
	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "grid", "topology family")
		n         = fs.Int("n", 64, "number of nodes (approximate for grid/bintree)")
		k         = fs.Int("k", 0, "number of messages (default n/2)")
		protoName = fs.String("protocol", "ag", "protocol: ag|tag|tag-uniform|tag-is|uncoded")
		modelName = fs.String("model", "sync", "time model: sync|async")
		q         = fs.Int("q", 2, "field order")
		action    = fs.String("action", "exchange", "action: push|pull|exchange")
		seed      = fs.Uint64("seed", 1, "root seed")
		trials    = fs.Int("trials", 3, "number of trials")
		single    = fs.Bool("single-source", false, "seed all messages at node 0")
		detail    = fs.Bool("detail", false, "print traffic counters and completion quantiles")
		traceCSV  = fs.String("tracecsv", "", "write per-node completion rounds to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.FromName(*graphName, *n, core.NewRand(core.SplitSeed(*seed, 999)))
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = g.N() / 2
	}
	proto, err := algossip.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	model, err := core.ParseTimeModel(*modelName)
	if err != nil {
		return err
	}
	act, err := core.ParseAction(*action)
	if err != nil {
		return err
	}

	diam := g.Diameter()
	delta := g.MaxDegree()
	fmt.Printf("graph=%s n=%d m=%d D=%d Δ=%d | protocol=%v model=%v k=%d q=%d action=%v\n",
		g.Name(), g.N(), g.M(), diam, delta, proto, model, *k, *q, act)

	var rounds []float64
	for i := 0; i < *trials; i++ {
		spec := algossip.Spec{
			Graph: g, K: *k, Protocol: proto, Model: model, Q: *q,
			Action: act, SingleSource: *single,
		}
		res, det, err := algossip.RunDetailed(spec, core.SplitSeed(*seed, uint64(i)))
		if err != nil {
			return err
		}
		fmt.Printf("  trial %d: %d rounds\n", i, res.Rounds)
		if *detail {
			done := make([]float64, 0, len(det.NodeDoneRounds))
			for _, r := range det.NodeDoneRounds {
				done = append(done, float64(r))
			}
			fmt.Printf("    traffic: %s | message size %d bits\n", det.Traffic, det.MessageBits)
			fmt.Printf("    node completion: %s\n", stats.Summarize(done))
			if det.TreeRounds >= 0 {
				fmt.Printf("    spanning tree complete at round %d\n", det.TreeRounds)
			}
		}
		if *traceCSV != "" && i == 0 {
			if err := writeTraceCSV(*traceCSV, det.NodeDoneRounds); err != nil {
				return err
			}
			fmt.Printf("    wrote per-node completion rounds to %s\n", *traceCSV)
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	s := stats.Summarize(rounds)
	fmt.Printf("stopping time: %s\n", s)
	bound := float64(*k+diam+int(math.Log2(float64(g.N())))+1) * float64(delta)
	fmt.Printf("Theorem 1 reference (k+log n+D)·Δ = %.0f  (measured mean / bound = %.2f)\n",
		bound, s.Mean/bound)
	return nil
}

// writeTraceCSV dumps per-node completion rounds as "node,round" rows.
func writeTraceCSV(path string, doneRounds []int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"node", "round"}); err != nil {
		return err
	}
	for v, r := range doneRounds {
		if err := w.Write([]string{strconv.Itoa(v), strconv.Itoa(r)}); err != nil {
			return err
		}
	}
	return w.Error()
}
