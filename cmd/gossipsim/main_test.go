package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGossipsimEndToEnd(t *testing.T) {
	args := [][]string{
		{"-graph", "line", "-n", "10", "-k", "5", "-protocol", "ag", "-trials", "1"},
		{"-graph", "barbell", "-n", "12", "-protocol", "tag", "-trials", "1", "-detail"},
		{"-graph", "complete", "-n", "8", "-protocol", "uncoded", "-trials", "1", "-model", "async"},
		{"-graph", "grid", "-n", "9", "-protocol", "tag-is", "-trials", "1", "-q", "256"},
	}
	for _, a := range args {
		if err := run(a); err != nil {
			t.Errorf("run(%v): %v", a, err)
		}
	}
}

func TestGossipsimTraceCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{
		"-graph", "ring", "-n", "8", "-k", "4", "-trials", "1", "-tracecsv", out,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 9 { // header + 8 nodes
		t.Fatalf("trace CSV has %d lines, want 9:\n%s", len(lines), data)
	}
	if lines[0] != "node,round" {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestGossipsimRejectsBadFlags(t *testing.T) {
	for _, a := range [][]string{
		{"-graph", "bogus"},
		{"-protocol", "bogus"},
		{"-model", "bogus"},
		{"-action", "sideways"},
	} {
		if err := run(a); err == nil {
			t.Errorf("run(%v) accepted", a)
		}
	}
}
