package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestGossipsimEndToEnd(t *testing.T) {
	args := [][]string{
		{"-graph", "line", "-n", "10", "-k", "5", "-protocol", "ag", "-trials", "1"},
		{"-graph", "barbell", "-n", "12", "-protocol", "tag", "-trials", "1", "-detail"},
		{"-graph", "complete", "-n", "8", "-protocol", "uncoded", "-trials", "1", "-model", "async"},
		{"-graph", "grid", "-n", "9", "-protocol", "tag-is", "-trials", "1", "-q", "256"},
		{"-graph", "torus", "-n", "16", "-protocol", "ag", "-trials", "1", "-dynamics", "edge:rate=0.2"},
		{"-graph", "ring", "-n", "12", "-protocol", "uncoded", "-trials", "1", "-dynamics", "churn:rate=0.1,period=8", "-model", "async"},
	}
	for _, a := range args {
		if err := run(a, os.Stdout); err != nil {
			t.Errorf("run(%v): %v", a, err)
		}
	}
}

// TestGossipsimDynamicsRejected: bad dynamics flags and unsupported
// protocol combinations fail fast.
func TestGossipsimDynamicsRejected(t *testing.T) {
	for _, a := range [][]string{
		{"-dynamics", "bogus"},
		{"-dynamics", "edge:rate=2"},
		{"-graph", "ring", "-n", "12", "-protocol", "tag", "-trials", "1", "-dynamics", "edge:rate=0.2"},
	} {
		if err := run(a, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", a)
		}
	}
}

// TestGossipsimParallelIdentical pins the determinism contract at the CLI
// level: the full printed report is byte-identical for any worker count,
// for static and dynamic topologies alike.
func TestGossipsimParallelIdentical(t *testing.T) {
	cases := [][]string{
		{"-graph", "barbell", "-n", "12", "-protocol", "tag",
			"-trials", "4", "-seed", "9", "-detail"},
		{"-graph", "torus", "-n", "16", "-protocol", "ag",
			"-trials", "4", "-seed", "9", "-detail", "-dynamics", "churn:rate=0.2,period=8"},
	}
	for _, base := range cases {
		var want string
		for _, workers := range []int{1, 4, 16} {
			var buf bytes.Buffer
			args := append(append([]string{}, base...), "-parallel", strconv.Itoa(workers))
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = buf.String()
				continue
			}
			if buf.String() != want {
				t.Errorf("%v -parallel %d output differs:\ngot:\n%swant:\n%s", base, workers, buf.String(), want)
			}
		}
	}
}

func TestGossipsimTraceCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{
		"-graph", "ring", "-n", "8", "-k", "4", "-trials", "1", "-tracecsv", out,
	}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 9 { // header + 8 nodes
		t.Fatalf("trace CSV has %d lines, want 9:\n%s", len(lines), data)
	}
	if lines[0] != "node,round" {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestGossipsimRejectsBadFlags(t *testing.T) {
	for _, a := range [][]string{
		{"-graph", "bogus"},
		{"-protocol", "bogus"},
		{"-model", "bogus"},
		{"-action", "sideways"},
	} {
		if err := run(a, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", a)
		}
	}
}

// failWriter rejects every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("broken pipe") }

// TestGossipsimPropagatesWriteErrors pins the fail-fast treatment: a
// failing stdout makes run return the error instead of dropping output.
func TestGossipsimPropagatesWriteErrors(t *testing.T) {
	err := run([]string{"-graph", "line", "-n", "8", "-trials", "1"}, failWriter{})
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("write error not propagated: %v", err)
	}
}

// TestProfileFlagsSmoke checks -cpuprofile/-memprofile/-trace write
// non-empty diagnostics files on clean exit without disturbing the report.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	trc := filepath.Join(dir, "trace.out")
	var buf bytes.Buffer
	args := []string{"-graph", "grid", "-n", "9", "-trials", "1", "-seed", "1",
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", trc}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stopping time:") {
		t.Fatalf("report output disturbed: %q", buf.String())
	}
	for _, path := range []string{cpu, mem, trc} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s missing: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
