// Command tables regenerates the paper's evaluation artifacts — every row
// of Table 1 and Table 2, the Theorem 2 queueing validation, the barbell
// speedup, and the ablations — printing each as a text table with its
// expected shape. Every experiment's trial loop fans out over the
// internal/harness worker pool (-parallel), and the printed tables are
// byte-identical for any worker count.
//
// Usage:
//
//	tables            # run everything at full scale
//	tables -quick     # small sizes and trial counts
//	tables -only E10  # a single experiment by ID
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"algossip/internal/experiments"
	"algossip/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "small sizes and trial counts")
		seed     = fs.Uint64("seed", 42, "root seed")
		only     = fs.String("only", "", "run a single experiment by ID (e.g. E4)")
		trials   = fs.Int("trials", 0, "override trials per data point")
		parallel = fs.Int("parallel", 0, "concurrent trials (0 = all cores)")
		outDir   = fs.String("outdir", "", "also write each experiment's output to <outdir>/<ID>.txt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed, Trials: *trials, Parallel: *parallel}

	exps := experiments.All()
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			return err
		}
		exps = []experiments.Experiment{e}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	// The fail-fast writer latches the first stdout error so a broken
	// pipe or full disk exits non-zero instead of silently truncating
	// the report.
	w := harness.NewFailFastWriter(stdout)
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Artifact)
		var buf bytes.Buffer
		out := io.MultiWriter(w, &buf)
		if err := e.Run(out, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return w.Err()
}
