package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestTablesSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-only", "A4", "-outdir", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "A4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "identical round counts") {
		t.Fatalf("A4 output unexpected:\n%s", data)
	}
}

// TestTablesParallelIdentical pins the determinism contract: the
// regenerated artifact bytes are identical for any worker count.
func TestTablesParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	var want string
	for _, workers := range []int{1, 4} {
		sub := filepath.Join(dir, strconv.Itoa(workers))
		if err := run([]string{"-quick", "-only", "E10", "-outdir", sub,
			"-parallel", strconv.Itoa(workers)}, os.Stdout); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(sub, "E10.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = string(data)
			continue
		}
		if string(data) != want {
			t.Errorf("-parallel %d output differs:\ngot:\n%swant:\n%s", workers, data, want)
		}
	}
}

func TestTablesRejectsUnknownID(t *testing.T) {
	if err := run([]string{"-only", "E99"}, os.Stdout); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}

// failWriter rejects every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestTablesPropagatesWriteErrors pins the fail-fast treatment cmd/sweep
// got in PR 1: tables now also exits non-zero when stdout fails.
func TestTablesPropagatesWriteErrors(t *testing.T) {
	err := run([]string{"-quick", "-only", "A4"}, failWriter{})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write error not propagated: %v", err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "A4"}, &buf); err != nil {
		t.Fatalf("healthy writer errored: %v", err)
	}
}
