package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTablesSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-only", "A4", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "A4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "identical round counts") {
		t.Fatalf("A4 output unexpected:\n%s", data)
	}
}

func TestTablesRejectsUnknownID(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}
