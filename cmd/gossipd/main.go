// Gossipd is the network-runtime daemon: it hosts one or more nodes of an
// algebraic-gossip cluster over real TCP or UDP sockets and exposes an
// HTTP control plane (health, Prometheus metrics, seed/start/topology/
// kill/drain). A multi-process deployment runs N gossipd processes with
// disjoint -nodes sets and a shared -peers map; drive them with
// cmd/gossipctl. SIGTERM (or SIGINT, or POST /drain) drains gracefully:
// node goroutines stop, sockets close, exit status 0.
//
// Example — a two-process 4-node ring under 10% loss:
//
//	gossipd -nodes 0,1 -peers 0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003 \
//	        -graph ring -n 4 -k 2 -loss 0.1 -http 127.0.0.1:8080 &
//	gossipd -nodes 2,3 -peers 0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003 \
//	        -graph ring -n 4 -k 2 -loss 0.1 -http 127.0.0.1:8081 &
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"algossip/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		httpAddr  = flag.String("http", "127.0.0.1:0", "control/metrics listen address")
		transport = flag.String("transport", "tcp", "gossip transport: tcp or udp")
		nodes     = flag.String("nodes", "", "comma-separated local node ids (required)")
		peers     = flag.String("peers", "", "node address map: id=host:port,... (all nodes of the deployment)")
		graphName = flag.String("graph", "ring", "topology family (see graph.FromName)")
		graphN    = flag.Int("n", 0, "topology node count (required)")
		graphSeed = flag.Uint64("graph-seed", 1, "rng seed for random topology families")
		k         = flag.Int("k", 0, "number of initial messages (required)")
		q         = flag.Int("q", 256, "field order")
		payload   = flag.Int("payload", 0, "payload symbols per message (0 = rank-only)")
		gen       = flag.Int("gen", 0, "generation size (0 = classic whole-k coding)")
		interval  = flag.Duration("interval", time.Millisecond, "per-node gossip period")
		seed      = flag.Uint64("seed", 1, "protocol randomness seed (shared across processes)")
		loss      = flag.Float64("loss", 0, "injected i.i.d. packet-loss probability")
		lossSeed  = flag.Uint64("loss-seed", 7, "loss injection seed")
		chaosLat  = flag.Duration("chaos-latency", 0, "injected per-frame delivery latency")
		chaosJit  = flag.Duration("chaos-jitter", 0, "extra uniform random latency in [0, jitter)")
		chaosCor  = flag.Float64("chaos-corrupt", 0, "probability of structurally corrupting each outbound frame (1 = Byzantine process)")
		chaosSeed = flag.Uint64("chaos-seed", 13, "chaos injection seed")
		shutdown  = flag.Duration("shutdown-timeout", 0, "drain bound for in-flight control requests (0 = 5s default)")
	)
	flag.Parse()

	local, err := daemon.ParseNodeList(*nodes)
	if err != nil {
		return err
	}
	peerMap, err := daemon.ParsePeerMap(*peers)
	if err != nil {
		return err
	}

	d, err := daemon.New(daemon.Options{
		HTTPAddr:        *httpAddr,
		Transport:       *transport,
		Local:           local,
		Peers:           peerMap,
		GraphName:       *graphName,
		GraphN:          *graphN,
		GraphSeed:       *graphSeed,
		K:               *k,
		Q:               *q,
		PayloadLen:      *payload,
		GenSize:         *gen,
		Interval:        *interval,
		Seed:            *seed,
		LossRate:        *loss,
		LossSeed:        *lossSeed,
		ChaosLatency:    *chaosLat,
		ChaosJitter:     *chaosJit,
		ChaosCorrupt:    *chaosCor,
		ChaosSeed:       *chaosSeed,
		ShutdownTimeout: *shutdown,
	})
	if err != nil {
		return err
	}
	// The control address line is the process's handshake with its
	// controller (livectl scrapes it when -http was :0).
	fmt.Printf("gossipd: control http://%s nodes %s\n", d.ControlAddr(), *nodes)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	return d.Run(ctx)
}
