// Gossipctl drives gossipd deployments over their HTTP control planes.
//
// Subcommands against a single daemon (-ctl host:port):
//
//	gossipctl status   -ctl 127.0.0.1:8080
//	gossipctl metrics  -ctl 127.0.0.1:8080
//	gossipctl seed     -ctl 127.0.0.1:8080 -node 0 -index 2 [-payload hex]
//	gossipctl start    -ctl 127.0.0.1:8080
//	gossipctl topology -ctl 127.0.0.1:8080 -graph ring -n 48 -graph-seed 1
//	gossipctl kill     -ctl 127.0.0.1:8080 -node 3
//	gossipctl chaos    -ctl 127.0.0.1:8080 [-latency 5ms] [-jitter 2ms] [-corrupt 0.2] [-partition 1,2] [-heal]
//	gossipctl drain    -ctl 127.0.0.1:8080
//
// And the one-shot orchestrator (the CI smoke job):
//
//	gossipctl run -procs 48 -graph ring -n 48 -k 8 -loss 0.1 -timeout 120s
//
// which with -byzantine, -chaos-latency and -partition-after also covers
// the chaos recipe: Byzantine processes corrupting every frame, injected
// link latency, and a mid-run partition that heals before convergence.
//
// which builds gossipd, spawns the processes, seeds round-robin, starts,
// waits for convergence, drains, and reports the stopping tick.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"algossip/internal/core"
	"algossip/internal/livectl"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "gossipctl: usage: gossipctl {run|status|metrics|seed|start|topology|kill|drain} [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runDeployment(os.Args[2:])
	case "status", "metrics", "seed", "start", "topology", "kill", "drain", "chaos":
		err = runSingle(os.Args[1], os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
}

// runDeployment is the one-shot orchestrator: spawn, seed, start, wait,
// drain — exit 0 only if every process converged and drained cleanly.
func runDeployment(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		procs     = fs.Int("procs", 2, "daemon process count")
		transport = fs.String("transport", "tcp", "gossip transport: tcp or udp")
		graphName = fs.String("graph", "ring", "topology family")
		graphN    = fs.Int("n", 8, "topology node count")
		graphSeed = fs.Uint64("graph-seed", 1, "topology rng seed")
		k         = fs.Int("k", 4, "number of initial messages")
		q         = fs.Int("q", 256, "field order")
		payload   = fs.Int("payload", 0, "payload symbols per message (0 = rank-only)")
		gen       = fs.Int("gen", 0, "generation size")
		interval  = fs.Duration("interval", time.Millisecond, "per-node gossip period")
		seed      = fs.Uint64("seed", 1, "protocol randomness seed")
		loss      = fs.Float64("loss", 0, "injected packet-loss probability")
		byz       = fs.Int("byzantine", 0, "number of Byzantine processes (corrupt every outbound frame)")
		chaosLat  = fs.Duration("chaos-latency", 0, "injected per-frame latency on every process")
		chaosJit  = fs.Duration("chaos-jitter", 0, "extra uniform random latency in [0, jitter)")
		partAfter = fs.Duration("partition-after", 0, "partition a node subset this long after start (0 = never)")
		healAfter = fs.Duration("heal-after", 0, "heal the partition this long after it opens (0 = 2x partition-after)")
		partFrac  = fs.Float64("partition-frac", 0.25, "fraction of nodes cut off by the scheduled partition")
		timeout   = fs.Duration("timeout", 120*time.Second, "overall deadline")
		bin       = fs.String("bin", "", "pre-built gossipd binary (default: go build)")
	)
	_ = fs.Parse(args)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	c, err := livectl.Launch(ctx, livectl.Options{
		Bin: *bin, Procs: *procs, Transport: *transport,
		GraphName: *graphName, GraphN: *graphN, GraphSeed: *graphSeed,
		K: *k, Q: *q, PayloadLen: *payload, GenSize: *gen,
		Interval: *interval, Seed: *seed, LossRate: *loss,
		ChaosLatency: *chaosLat, ChaosJitter: *chaosJit,
		ByzantineProcs: *byz,
	})
	if err != nil {
		return err
	}
	defer c.Stop()
	if err := c.WaitHealthy(ctx); err != nil {
		return err
	}
	fmt.Printf("gossipctl: %d processes hosting %d nodes healthy in %v\n",
		c.Procs(), c.N(), time.Since(start).Round(time.Millisecond))

	var payloads [][]byte
	if *payload > 0 {
		rng := core.NewRand(core.SplitSeed(*seed, 50))
		payloads = make([][]byte, *k)
		for i := range payloads {
			payloads[i] = make([]byte, *payload)
			for j := range payloads[i] {
				payloads[i][j] = byte(rng.Uint64())
			}
		}
	}
	if err := c.SeedRoundRobin(ctx, payloads); err != nil {
		return err
	}
	if err := c.Start(ctx); err != nil {
		return err
	}
	if *byz > 0 {
		fmt.Printf("gossipctl: %d Byzantine process(es) corrupting every outbound frame\n", *byz)
	}

	// Scheduled mid-run degradation: cut the tail of the node range (the
	// round-robin seeding never reaches it for k well under n, so no
	// message is trapped behind the cut), then heal and let convergence
	// finish.
	if *partAfter > 0 {
		cut := int(float64(c.N()) * *partFrac)
		if cut < 1 {
			cut = 1
		}
		nodes := make([]core.NodeID, 0, cut)
		for v := c.N() - cut; v < c.N(); v++ {
			nodes = append(nodes, core.NodeID(v))
		}
		heal := *healAfter
		if heal == 0 {
			heal = 2 * *partAfter
		}
		go func() {
			select {
			case <-time.After(*partAfter):
			case <-ctx.Done():
				return
			}
			if err := c.Partition(ctx, nodes); err != nil {
				fmt.Fprintln(os.Stderr, "gossipctl: partition:", err)
				return
			}
			fmt.Printf("gossipctl: partitioned %d nodes (%d..%d) at t=%v\n",
				cut, c.N()-cut, c.N()-1, time.Since(start).Round(time.Millisecond))
			select {
			case <-time.After(heal):
			case <-ctx.Done():
				return
			}
			if err := c.Heal(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "gossipctl: heal:", err)
				return
			}
			fmt.Printf("gossipctl: partition healed at t=%v\n", time.Since(start).Round(time.Millisecond))
		}()
	}

	tick, err := c.WaitConverged(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("gossipctl: converged at tick %d (%v wall)\n", tick, time.Since(start).Round(time.Millisecond))
	if err := c.Drain(ctx); err != nil {
		return err
	}
	fmt.Println("gossipctl: all processes drained cleanly")
	return nil
}

// runSingle sends one control-plane request to one daemon.
func runSingle(sub string, args []string) error {
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	var (
		ctl       = fs.String("ctl", "", "daemon control address host:port (required)")
		node      = fs.Int("node", 0, "node id (seed, kill)")
		index     = fs.Int("index", 0, "message index (seed)")
		payload   = fs.String("payload", "", "hex payload symbols (seed)")
		graphName = fs.String("graph", "ring", "topology family (topology)")
		graphN    = fs.Int("n", 0, "topology node count (topology)")
		graphSeed = fs.Uint64("graph-seed", 1, "topology rng seed (topology)")
		latency   = fs.Duration("latency", -1, "chaos: injected per-frame latency (chaos)")
		jitter    = fs.Duration("jitter", -1, "chaos: extra uniform random latency (chaos)")
		corrupt   = fs.Float64("corrupt", -1, "chaos: per-frame corruption probability (chaos)")
		partition = fs.String("partition", "", "chaos: comma-separated node ids to cut off (chaos)")
		heal      = fs.Bool("heal", false, "chaos: lift every partition (chaos)")
	)
	_ = fs.Parse(args)
	if *ctl == "" {
		return fmt.Errorf("%s: -ctl is required", sub)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	base := "http://" + *ctl

	do := func(method, path string, body any) (string, error) {
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				return "", err
			}
			rd = strings.NewReader(string(b))
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer func() { _ = resp.Body.Close() }()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(out)))
		}
		return string(out), nil
	}

	var out string
	var err error
	switch sub {
	case "status":
		out, err = do(http.MethodGet, "/status", nil)
	case "metrics":
		out, err = do(http.MethodGet, "/metrics", nil)
	case "start":
		out, err = do(http.MethodPost, "/start", nil)
	case "drain":
		out, err = do(http.MethodPost, "/drain", nil)
	case "kill":
		out, err = do(http.MethodPost, "/kill", map[string]any{"node": *node})
	case "topology":
		out, err = do(http.MethodPost, "/topology",
			map[string]any{"family": *graphName, "n": *graphN, "seed": *graphSeed})
	case "chaos":
		body := map[string]any{}
		if *latency >= 0 {
			body["latency_ms"] = float64(*latency) / float64(time.Millisecond)
		}
		if *jitter >= 0 {
			body["jitter_ms"] = float64(*jitter) / float64(time.Millisecond)
		}
		if *corrupt >= 0 {
			body["corrupt_rate"] = *corrupt
		}
		if *partition != "" {
			var ids []int
			for _, part := range strings.Split(*partition, ",") {
				var id int
				if _, perr := fmt.Sscanf(strings.TrimSpace(part), "%d", &id); perr != nil {
					return fmt.Errorf("chaos: bad -partition id %q", part)
				}
				ids = append(ids, id)
			}
			body["partition"] = ids
		}
		if *heal {
			body["heal"] = true
		}
		if len(body) == 0 {
			// No knobs: report the current chaos state.
			out, err = do(http.MethodGet, "/chaos", nil)
		} else {
			out, err = do(http.MethodPost, "/chaos", body)
		}
	case "seed":
		body := map[string]any{"node": *node, "index": *index}
		if *payload != "" {
			raw, derr := hex.DecodeString(*payload)
			if derr != nil {
				return fmt.Errorf("seed: bad -payload hex: %w", derr)
			}
			body["payload"] = raw
		}
		out, err = do(http.MethodPost, "/seed", body)
	}
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
