package algossip

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/rlnc"
	"algossip/internal/runtime"
	"algossip/internal/sim"
)

// Re-exported kernel types. External users interact with the internal
// packages exclusively through these aliases and the constructors below.
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// Tree is a rooted spanning tree (parent array).
	Tree = graph.Tree
	// NodeID identifies a node, 0..n-1.
	NodeID = core.NodeID
	// TimeModel selects synchronous or asynchronous scheduling.
	TimeModel = core.TimeModel
	// Action is the information-flow direction (PUSH/PULL/EXCHANGE).
	Action = core.Action
	// Message is one initial message (index + payload symbols).
	Message = rlnc.Message
	// Elem is one field symbol (a byte for every supported field).
	Elem = gf.Elem
	// Result summarizes a simulation run.
	Result = sim.Result
	// Cluster is a concurrent (goroutine-per-node) deployment.
	Cluster = runtime.Cluster
	// ClusterConfig is the unified, validated runtime configuration
	// (construct it through NewCluster's functional options).
	ClusterConfig = runtime.Config
	// ClusterOption customizes a cluster under construction.
	ClusterOption = runtime.Option
	// Transport moves packets between concurrent nodes.
	Transport = runtime.Transport
	// TransportStats snapshots a transport's send/drop/redial counters.
	TransportStats = runtime.TransportStats
	// Envelope is the wire message moved by Transports.
	Envelope = runtime.Envelope
)

// Re-exported constants.
const (
	// Synchronous: every node acts once per round.
	Synchronous = core.Synchronous
	// Asynchronous: one uniform random node acts per timeslot.
	Asynchronous = core.Asynchronous
	// Push, Pull and Exchange are the contact actions of the paper.
	Push     = core.Push
	Pull     = core.Pull
	Exchange = core.Exchange
	// NilNode is the "no node" sentinel.
	NilNode = core.NilNode
)

// Topology constructors (see internal/graph for details).
var (
	// Line returns the path graph P_n.
	Line = graph.Line
	// Ring returns the cycle C_n.
	Ring = graph.Ring
	// Grid returns the rows x cols 2D grid.
	Grid = graph.Grid
	// Torus returns the wraparound grid.
	Torus = graph.Torus
	// Complete returns K_n.
	Complete = graph.Complete
	// Star returns the star graph.
	Star = graph.Star
	// BinaryTree returns the complete binary tree.
	BinaryTree = graph.BinaryTree
	// KAryTree returns the complete k-ary tree.
	KAryTree = graph.KAryTree
	// Barbell returns two cliques joined by one edge.
	Barbell = graph.Barbell
	// Lollipop returns a clique with a tail path.
	Lollipop = graph.Lollipop
	// CliqueChain returns c cliques of size m in a chain.
	CliqueChain = graph.CliqueChain
	// Hypercube returns the d-dimensional hypercube.
	Hypercube = graph.Hypercube
	// ErdosRenyi returns a connected G(n,p) sample.
	ErdosRenyi = graph.ErdosRenyi
	// RandomRegular returns a near-d-regular connected graph.
	RandomRegular = graph.RandomRegular
	// WattsStrogatz returns a small-world graph.
	WattsStrogatz = graph.WattsStrogatz
)

// Byte helpers for payload applications.
var (
	// SplitBytes chunks data into k messages for dissemination.
	SplitBytes = rlnc.SplitBytes
	// JoinBytes reassembles data from decoded messages.
	JoinBytes = rlnc.JoinBytes
)

// Concurrent-runtime constructors and options. NewCluster takes the
// transport, the topology, and k, plus functional options:
//
//	c, err := algossip.NewCluster(tr, g, k,
//	    algossip.WithPayload(64), algossip.WithSeed(7))
var (
	// NewChanTransport returns the in-process transport.
	NewChanTransport = runtime.NewChanTransport
	// NewTCPTransport returns the wire-framed TCP transport.
	NewTCPTransport = runtime.NewTCPTransport
	// NewUDPTransport returns the one-frame-per-datagram UDP transport.
	NewUDPTransport = runtime.NewUDPTransport
	// NewLossyTransport wraps a transport with i.i.d. loss injection.
	NewLossyTransport = runtime.NewLossyTransport
	// NewCluster builds a concurrent gossip deployment.
	NewCluster = runtime.NewCluster
	// NewTAGCluster builds a concurrent TAG deployment.
	NewTAGCluster = runtime.NewTAGCluster

	// WithPayload enables payload mode with r symbols per message.
	WithPayload = runtime.WithPayload
	// WithGenerations codes the k messages in generations of this size.
	WithGenerations = runtime.WithGenerations
	// WithObserver registers a completion observer.
	WithObserver = runtime.WithObserver
	// WithField selects the coefficient field (default GF(256)).
	WithField = runtime.WithField
	// WithInterval sets the per-node gossip period.
	WithInterval = runtime.WithInterval
	// WithSeed roots the deployment's randomness.
	WithSeed = runtime.WithSeed
)

// Typed transport errors, for errors.Is.
var (
	// ErrTransportClosed reports an operation on a closed transport.
	ErrTransportClosed = runtime.ErrTransportClosed
	// ErrUnknownNode reports a Send to an unroutable node.
	ErrUnknownNode = runtime.ErrUnknownNode
	// ErrBackpressure reports an envelope dropped on a full queue.
	ErrBackpressure = runtime.ErrBackpressure
)

// Protocol selects a k-dissemination protocol for Run. It lives in
// internal/harness (the shared experiment engine); the alias keeps the
// public API stable.
type Protocol = harness.Protocol

const (
	// ProtocolUniformAG is uniform algebraic gossip (Theorem 1).
	ProtocolUniformAG = harness.ProtocolUniformAG
	// ProtocolTAGRR is TAG with the round-robin broadcast B_RR (Theorem 5).
	ProtocolTAGRR = harness.ProtocolTAGRR
	// ProtocolTAGUniform is TAG with a uniform broadcast as S.
	ProtocolTAGUniform = harness.ProtocolTAGUniform
	// ProtocolTAGIS is TAG with the IS protocol as S (Theorems 6-8).
	ProtocolTAGIS = harness.ProtocolTAGIS
	// ProtocolUncoded is the store-and-forward baseline.
	ProtocolUncoded = harness.ProtocolUncoded
)

// ParseProtocol converts a name such as "tag-brr" to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	return harness.ParseProtocol(s)
}

// Spec declares one simulated k-dissemination run. Zero fields default to
// the paper's canonical configuration: synchronous time, EXCHANGE, GF(2),
// messages spread round-robin across nodes.
type Spec struct {
	// Graph is the topology (required).
	Graph *Graph
	// K is the number of messages (required).
	K int
	// Protocol picks the dissemination protocol (default uniform AG).
	Protocol Protocol
	// Model is the time model (default Synchronous).
	Model TimeModel
	// Q is the field order (default 2).
	Q int
	// Action is the contact action (default Exchange; uniform AG only).
	Action Action
	// SingleSource seeds all messages at node 0 instead of round-robin.
	SingleSource bool
	// MaxRounds caps the simulation (default generous).
	MaxRounds int
}

// Run simulates the spec with the given seed and returns the stopping time
// in rounds. Identical (Spec, seed) pairs produce identical results.
func Run(spec Spec, seed uint64) (Result, error) {
	if spec.Graph == nil {
		return Result{}, fmt.Errorf("algossip: nil graph")
	}
	if spec.K <= 0 {
		return Result{}, fmt.Errorf("algossip: k must be positive, got %d", spec.K)
	}
	o, err := harness.Execute(harness.GossipSpec{
		Graph:        spec.Graph,
		Model:        spec.Model,
		K:            spec.K,
		Q:            spec.Q,
		Action:       spec.Action,
		SingleSource: spec.SingleSource,
		MaxRounds:    spec.MaxRounds,
	}, spec.Protocol, seed)
	return o.Result, err
}

// Disseminate runs payload-mode uniform algebraic gossip over the graph
// until every node can decode, then returns node 0's decoded messages.
// msgs[i].Index must equal i; message i starts at node assign[i] (nil
// assign spreads round-robin). It is the simplest end-to-end entry point
// for applications that actually want the data moved, not just timed.
func Disseminate(g *Graph, msgs []Message, assign []NodeID, seed uint64) ([]Message, Result, error) {
	k := len(msgs)
	if k == 0 {
		return nil, Result{}, fmt.Errorf("algossip: no messages")
	}
	r := len(msgs[0].Payload)
	cfg := rlnc.Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
	p, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
		algebraic.Config{RLNC: cfg}, core.NewRand(core.SplitSeed(seed, 1)))
	if err != nil {
		return nil, Result{}, err
	}
	if assign == nil {
		assign = algebraic.RoundRobinAssign(k, g.N())
	}
	if err := p.SeedAll(assign, msgs); err != nil {
		return nil, Result{}, err
	}
	res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 2)).Run()
	if err != nil {
		return nil, res, err
	}
	decoded, err := p.Node(0).Decode()
	return decoded, res, err
}

// NewRand returns the library's deterministic RNG for a seed; exposed so
// applications can drive the random topology constructors reproducibly.
func NewRand(seed uint64) *rand.Rand { return core.NewRand(seed) }

// RandomMessages builds k messages with r random GF(256) payload symbols
// each, for demos and tests.
func RandomMessages(k, r int, seed uint64) []Message {
	cfg := rlnc.Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
	return algebraic.RandomMessages(cfg, core.NewRand(seed))
}
