package algossip

import (
	"fmt"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/ispread"
	"algossip/internal/gossip/tag"
	"algossip/internal/gossip/uncoded"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// Traffic is the per-run transmission accounting (packets sent, helpful,
// useless, dropped) — see the paper's bounded-message-size motivation.
type Traffic = gossip.Traffic

// Detail augments a Result with per-node and per-packet observability.
type Detail struct {
	// NodeDoneRounds holds, per node, the round at which it completed.
	NodeDoneRounds []int
	// Traffic is the aggregated transmission accounting (for TAG it
	// includes the spanning-tree protocol's messages).
	Traffic Traffic
	// MessageBits is the wire size of one coded message, (k+r)·log2 q.
	MessageBits int
	// TreeRounds is t(S) for TAG runs (-1 otherwise or when untracked).
	TreeRounds int
}

// RunDetailed is Run plus a Detail record: per-node completion rounds,
// traffic counters, and message sizing. Identical (Spec, seed) pairs
// produce identical results, and RunDetailed agrees with Run round-for-
// round at the same seed.
func RunDetailed(spec Spec, seed uint64) (Result, Detail, error) {
	if spec.Graph == nil {
		return Result{}, Detail{}, fmt.Errorf("algossip: nil graph")
	}
	if spec.K <= 0 {
		return Result{}, Detail{}, fmt.Errorf("algossip: k must be positive, got %d", spec.K)
	}
	g := spec.Graph
	model := spec.Model
	if model == 0 {
		model = Synchronous
	}
	q := spec.Q
	if q == 0 {
		q = 2
	}
	action := spec.Action
	if action == 0 {
		action = Exchange
	}
	maxRounds := spec.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 21
	}
	rcfg := RLNCRankOnlyConfig(spec.K, q)
	assign := algebraic.RoundRobinAssign(spec.K, g.N())
	if spec.SingleSource {
		assign = algebraic.SingleAssign(spec.K, 0)
	}
	detail := Detail{MessageBits: gossip.MessageBits(rcfg), TreeRounds: -1}

	var proto sim.Protocol
	var finish func() // gathers detail after the run
	switch spec.Protocol {
	case 0, ProtocolUniformAG:
		p, err := algebraic.New(g, model, sim.NewUniform(g),
			algebraic.Config{RLNC: rcfg, Action: action},
			core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			return Result{}, Detail{}, err
		}
		if err := p.SeedAll(assign, nil); err != nil {
			return Result{}, Detail{}, err
		}
		proto = p
		finish = func() {
			detail.NodeDoneRounds = p.DoneRounds()
			detail.Traffic = p.Traffic()
		}
	case ProtocolTAGRR, ProtocolTAGUniform, ProtocolTAGIS:
		var stp tag.SpanningTree
		switch spec.Protocol {
		case ProtocolTAGRR:
			stp = broadcast.New(g, model, sim.NewRoundRobin(g),
				broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
		case ProtocolTAGUniform:
			stp = broadcast.New(g, model, sim.NewUniform(g),
				broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
		default:
			stp = ispread.New(g, model, ispread.Config{Root: 0},
				core.NewRand(core.SplitSeed(seed, 3)))
		}
		p, err := tag.New(g, model, stp, rcfg, core.NewRand(core.SplitSeed(seed, 4)))
		if err != nil {
			return Result{}, Detail{}, err
		}
		if err := p.SeedAll(assign, nil); err != nil {
			return Result{}, Detail{}, err
		}
		proto = p
		finish = func() {
			detail.NodeDoneRounds = p.DoneRounds()
			detail.Traffic = p.Traffic()
			detail.TreeRounds = p.TreeRound()
		}
	case ProtocolUncoded:
		p := uncoded.New(g, model, sim.NewUniform(g),
			uncoded.Config{K: spec.K, Action: action},
			core.NewRand(core.SplitSeed(seed, 1)))
		p.SeedAll(assign)
		proto = p
		finish = func() {
			detail.NodeDoneRounds = p.DoneRounds()
			detail.Traffic = p.Traffic()
			detail.MessageBits = gossip.UncodedMessageBits(spec.K, 1, q)
		}
	default:
		return Result{}, Detail{}, fmt.Errorf("algossip: unknown protocol %v", spec.Protocol)
	}

	res, err := sim.New(g, model, proto,
		core.SplitSeed(seed, engineSeedStream(spec.Protocol)),
		sim.WithMaxRounds(maxRounds)).Run()
	if err != nil {
		return res, detail, err
	}
	finish()
	return res, detail, nil
}

// engineSeedStream keeps RunDetailed's scheduling streams aligned with the
// experiment runners', so RunDetailed replays the exact trajectories of
// Run at the same seed.
func engineSeedStream(p Protocol) uint64 {
	switch p {
	case ProtocolTAGRR, ProtocolTAGUniform, ProtocolTAGIS:
		return 5
	default:
		return 2
	}
}

// RLNCRankOnlyConfig returns the rank-only codec configuration used by the
// timing APIs: field order q, k unknowns, no payload.
func RLNCRankOnlyConfig(k, q int) rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(q), K: k, RankOnly: true}
}
