package algossip

import (
	"fmt"

	"algossip/internal/gf"
	"algossip/internal/gossip"
	"algossip/internal/harness"
	"algossip/internal/rlnc"
)

// Traffic is the per-run transmission accounting (packets sent, helpful,
// useless, dropped) — see the paper's bounded-message-size motivation.
type Traffic = gossip.Traffic

// Detail augments a Result with per-node and per-packet observability.
type Detail struct {
	// NodeDoneRounds holds, per node, the round at which it completed.
	NodeDoneRounds []int
	// Traffic is the aggregated transmission accounting (for TAG it
	// includes the spanning-tree protocol's messages).
	Traffic Traffic
	// MessageBits is the wire size of one coded message, (k+r)·log2 q.
	MessageBits int
	// TreeRounds is t(S) for TAG runs (-1 otherwise or when untracked).
	TreeRounds int
}

// RunDetailed is Run plus a Detail record: per-node completion rounds,
// traffic counters, and message sizing. It shares harness.Execute with
// Run, so identical (Spec, seed) pairs produce identical results and
// RunDetailed agrees with Run round-for-round at the same seed.
func RunDetailed(spec Spec, seed uint64) (Result, Detail, error) {
	if spec.Graph == nil {
		return Result{}, Detail{}, fmt.Errorf("algossip: nil graph")
	}
	if spec.K <= 0 {
		return Result{}, Detail{}, fmt.Errorf("algossip: k must be positive, got %d", spec.K)
	}
	o, err := harness.Execute(harness.GossipSpec{
		Graph:        spec.Graph,
		Model:        spec.Model,
		K:            spec.K,
		Q:            spec.Q,
		Action:       spec.Action,
		SingleSource: spec.SingleSource,
		MaxRounds:    spec.MaxRounds,
	}, spec.Protocol, seed)
	detail := Detail{
		NodeDoneRounds: o.NodeDoneRounds,
		Traffic:        o.Traffic,
		MessageBits:    o.MessageBits,
		TreeRounds:     o.TreeRounds,
	}
	return o.Result, detail, err
}

// RLNCRankOnlyConfig returns the rank-only codec configuration used by the
// timing APIs: field order q, k unknowns, no payload.
func RLNCRankOnlyConfig(k, q int) rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(q), K: k, RankOnly: true}
}
