// Quickstart: disseminate k messages across an 8x8 grid with uniform
// algebraic gossip, decode them at every node, and print the stopping
// time against the paper's Theorem 1 reference.
package main

import (
	"fmt"
	"math"
	"os"

	"algossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const k, payloadSymbols = 16, 32
	g := algossip.Grid(8, 8)

	// Build k messages with random payloads and spread them round-robin
	// over the 64 nodes (nodes 0..15 each hold one initial message).
	msgs := algossip.RandomMessages(k, payloadSymbols, 7)
	decoded, res, err := algossip.Disseminate(g, msgs, nil, 42)
	if err != nil {
		return err
	}

	fmt.Printf("topology: %s (n=%d, D=%d, Δ=%d)\n", g.Name(), g.N(), g.Diameter(), g.MaxDegree())
	fmt.Printf("disseminated k=%d messages of %d bytes each to all %d nodes\n",
		k, payloadSymbols, g.N())
	fmt.Printf("stopping time: %d synchronous rounds\n", res.Rounds)
	bound := float64(k+g.Diameter()+int(math.Log2(float64(g.N())))) * float64(g.MaxDegree())
	fmt.Printf("Theorem 1 reference (k+log n+D)Δ = %.0f — measured/bound = %.2f\n",
		bound, float64(res.Rounds)/bound)

	// Prove the decode: every message came back intact at node 0.
	for i, m := range decoded {
		if m.Index != i || len(m.Payload) != payloadSymbols {
			return fmt.Errorf("message %d decoded incorrectly", i)
		}
		for j, sym := range m.Payload {
			if sym != msgs[i].Payload[j] {
				return fmt.Errorf("message %d corrupted at symbol %d", i, j)
			}
		}
	}
	fmt.Println("all messages decoded intact at every node ✓")
	return nil
}
