// Filesync: replicate a file to every node of a cluster using real
// concurrent RLNC gossip over TCP. The file is chunked into k messages;
// each node starts with at most one chunk; goroutine nodes exchange random
// linear combinations over loopback TCP until everyone can reconstruct the
// whole file — the "multicast via network coding" application from the
// paper's introduction.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"time"

	"algossip"
	"algossip/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "filesync:", err)
		os.Exit(1)
	}
}

func run() error {
	// The "file": 2 KiB of pseudo-random bytes.
	rng := core.NewRand(2024)
	file := make([]byte, 2048)
	for i := range file {
		file[i] = byte(rng.Uint64())
	}

	const k = 8
	payloadLen := (len(file)+8)/k + 1
	msgs, err := algossip.SplitBytes(file, k, payloadLen)
	if err != nil {
		return err
	}

	// An 8-node random 4-regular overlay, as a peer-to-peer swarm would
	// build.
	g := algossip.RandomRegular(8, 4, algossip.NewRand(5))
	tr := algossip.NewTCPTransport()
	defer func() { _ = tr.Close() }()

	cluster, err := algossip.NewCluster(tr, g, k,
		algossip.WithPayload(payloadLen),
		algossip.WithInterval(300*time.Microsecond),
		algossip.WithSeed(77))
	if err != nil {
		return err
	}
	// Chunk i starts at node i — no node has the whole file.
	for i, m := range msgs {
		if err := cluster.Seed(algossip.NodeID(i), m); err != nil {
			return err
		}
	}

	fmt.Printf("replicating %d bytes as k=%d coded chunks over %s via TCP...\n",
		len(file), k, g.Name())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	done, err := cluster.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%d/%d nodes reached full rank in %v\n", done, g.N(), time.Since(start).Round(time.Millisecond))

	// Every node reconstructs the identical file.
	for v := 0; v < g.N(); v++ {
		decoded, err := cluster.Decode(algossip.NodeID(v))
		if err != nil {
			return fmt.Errorf("node %d decode: %w", v, err)
		}
		got, err := algossip.JoinBytes(decoded)
		if err != nil {
			return fmt.Errorf("node %d join: %w", v, err)
		}
		if !bytes.Equal(got, file) {
			return fmt.Errorf("node %d reconstructed a different file", v)
		}
	}
	fmt.Println("every node reconstructed the file bit-exactly ✓")
	return nil
}
