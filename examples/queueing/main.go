// Queueing: walk through the reduction behind Theorem 2 (the paper's
// Figure 1). Algebraic gossip on any graph reduces to customers draining
// through a tree of queues: (a) take the graph, (b) take a BFS spanning
// tree, (c) place one customer per initial message and let every node be
// an M/M/1 server forwarding to its parent, (d) bound the tree by a line
// of queues, (e) bound that by the line with all customers at the far end.
// The drain time of the last system is O((k + l_max + log n)/µ) — and the
// chain is ordered, which this program demonstrates numerically.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"

	"algossip/internal/graph"
	"algossip/internal/queueing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "queueing:", err)
		os.Exit(1)
	}
}

func run() error {
	const trials = 500
	const mu = 1.0

	// (a) the graph; (b) its BFS tree from node 0.
	g := graph.Grid(5, 5)
	tree := g.BFSTree(0)
	lmax := tree.Depth()

	// (c) one customer per node — the k = n all-to-all case.
	customers := make([]int, g.N())
	k := 0
	for v := range customers {
		customers[v] = 1
		k++
	}
	depths := tree.Depths()
	byLevel := make([]int, lmax+1)
	for v, c := range customers {
		byLevel[depths[v]] += c
	}

	mean := func(seed uint64, fn func(rng *rand.Rand) float64) float64 {
		return queueing.MeanDrainTime(trials, seed, fn)
	}
	tTree := mean(1, func(rng *rand.Rand) float64 {
		return queueing.SimulateTree(tree, customers, queueing.Exponential(mu), rng)
	})
	tLine := mean(2, func(rng *rand.Rand) float64 {
		return queueing.SimulateLine(byLevel, queueing.Exponential(mu), rng)
	})
	tEnd := mean(3, func(rng *rand.Rand) float64 {
		return queueing.SimulateLineAllAtEnd(lmax, k, queueing.Exponential(mu), rng)
	})
	tOpen := mean(4, func(rng *rand.Rand) float64 {
		return queueing.SimulateOpenLine(lmax, k, mu, mu/2, rng)
	})

	fmt.Printf("graph %s -> BFS tree (lmax=%d), k=%d customers, µ=%.0f\n", g.Name(), lmax, k, mu)
	fmt.Println("mean drain times over", trials, "trials (the Theorem 2 dominance chain):")
	fmt.Printf("  Q^tree  (work-conserving tree)        %7.1f\n", tTree)
	fmt.Printf("  Q^line  (levels merged to a line)     %7.1f\n", tLine)
	fmt.Printf("  Q̂^line  (all customers at the end)    %7.1f\n", tEnd)
	fmt.Printf("  open line, Poisson λ=µ/2 (Lemma 7)    %7.1f  ≈ 2k/µ + 2·lmax/µ = %.1f\n",
		tOpen, 2*float64(k)/mu+2*float64(lmax)/mu)
	if tTree <= tLine*1.05 && tLine <= tEnd*1.05 {
		fmt.Println("ordering holds: t(Q^tree) ≤ t(Q^line) ≤ t(Q̂^line) ✓")
	} else {
		fmt.Println("WARNING: ordering violated beyond tolerance")
	}
	fmt.Printf("Theorem 2 prediction O((k+lmax+log n)/µ) = O(%.0f): all systems comfortably inside\n",
		(float64(k)+float64(lmax)+math.Log2(float64(g.N())))/mu*4)
	return nil
}
