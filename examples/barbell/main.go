// Barbell showdown: the motivating experiment of the paper. On the barbell
// graph (two cliques joined by one edge) uniform algebraic gossip needs
// Ω(n²) rounds for all-to-all dissemination because the single bridge edge
// is contacted with probability only Θ(1/n) per round — while TAG builds a
// spanning tree with the round-robin broadcast B_RR in at most 3n rounds
// and then pipelines coded packets along the tree, finishing in Θ(n).
//
// This program sweeps n and prints both curves plus the fitted exponents.
package main

import (
	"fmt"
	"os"

	"algossip"
	"algossip/internal/core"
	"algossip/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "barbell:", err)
		os.Exit(1)
	}
}

func run() error {
	sizes := []int{16, 32, 64, 96}
	const trials = 3

	fmt.Println("all-to-all dissemination (k = n) on the barbell graph")
	fmt.Printf("%6s  %14s  %12s  %8s\n", "n", "uniform AG", "TAG+BRR", "speedup")

	var xs, agY, tagY []float64
	for _, n := range sizes {
		g := algossip.Barbell(n)
		ag, err := meanRounds(algossip.Spec{Graph: g, K: n, Protocol: algossip.ProtocolUniformAG}, trials, 11)
		if err != nil {
			return err
		}
		tag, err := meanRounds(algossip.Spec{Graph: g, K: n, Protocol: algossip.ProtocolTAGRR}, trials, 13)
		if err != nil {
			return err
		}
		fmt.Printf("%6d  %14.0f  %12.0f  %7.1fx\n", n, ag, tag, ag/tag)
		xs = append(xs, float64(n))
		agY = append(agY, ag)
		tagY = append(tagY, tag)
	}

	_, agExp, _ := stats.PowerFit(xs, agY)
	_, tagExp, _ := stats.PowerFit(xs, tagY)
	fmt.Printf("\nfitted growth: uniform AG ~ n^%.2f (paper: n²), TAG ~ n^%.2f (paper: n)\n",
		agExp, tagExp)
	fmt.Println("TAG's speedup ratio grows linearly in n, as Section 1.1 claims.")
	return nil
}

func meanRounds(spec algossip.Spec, trials int, seed uint64) (float64, error) {
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := algossip.Run(spec, core.SplitSeed(seed, uint64(i)))
		if err != nil {
			return 0, err
		}
		sum += float64(res.Rounds)
	}
	return sum / float64(trials), nil
}
