// Sensorgrid: all-to-all aggregation on a constant-degree sensor network.
// Every node of a 6x6 grid holds one sensor reading; uniform algebraic
// gossip (the order-optimal protocol for constant-degree graphs, Theorem 3)
// disseminates all n readings to all nodes, after which any node can
// compute any global aggregate — here min/max/mean temperature — with no
// coordinator and messages of bounded size.
package main

import (
	"fmt"
	"os"

	"algossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensorgrid:", err)
		os.Exit(1)
	}
}

func run() error {
	const rows, cols = 6, 6
	g := algossip.Grid(rows, cols)
	n := g.N()

	// Synthetic temperature field: a warm blob in one corner, in tenths of
	// a degree so each reading fits one byte.
	readings := make([]byte, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			readings[r*cols+c] = byte(150 + 10*r + 7*c) // 15.0°C .. 23.5°C
		}
	}

	// One message per sensor: k = n (all-to-all communication).
	msgs := make([]algossip.Message, n)
	assign := make([]algossip.NodeID, n)
	for v := 0; v < n; v++ {
		msgs[v] = algossip.Message{Index: v, Payload: []byte{readings[v]}}
		assign[v] = algossip.NodeID(v)
	}

	decoded, res, err := algossip.Disseminate(g, msgs, assign, 99)
	if err != nil {
		return err
	}
	fmt.Printf("all-to-all on %s: k=n=%d readings, %d synchronous rounds (Θ(k+D), D=%d)\n",
		g.Name(), n, res.Rounds, g.Diameter())

	minT, maxT, sum := decoded[0].Payload[0], decoded[0].Payload[0], 0
	for _, m := range decoded {
		t := m.Payload[0]
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		sum += int(t)
	}
	fmt.Printf("aggregates computable at every node: min=%.1f°C max=%.1f°C mean=%.1f°C\n",
		float64(minT)/10, float64(maxT)/10, float64(sum)/float64(n)/10)

	for v, m := range decoded {
		if m.Payload[0] != readings[v] {
			return fmt.Errorf("reading %d corrupted in transit", v)
		}
	}
	fmt.Println("all readings delivered intact ✓")
	return nil
}
