// Lossycluster: failure injection on the concurrent runtime. Runs the same
// coded gossip cluster three times — clean, over a 30%-loss transport, and
// with a node crashing mid-run — and shows that network coding needs no
// retransmission or recovery protocol: any surviving random combination is
// as good as any other, so loss only dilates time and a dead node's role
// is absorbed by redundancy.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"algossip"
	"algossip/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lossycluster:", err)
		os.Exit(1)
	}
}

const (
	k          = 6
	payloadLen = 16
)

func buildCluster(tr algossip.Transport, seed uint64) (*algossip.Cluster, []algossip.Message, error) {
	g := algossip.Grid(3, 3)
	c, err := algossip.NewCluster(tr, g, k,
		algossip.WithPayload(payloadLen),
		algossip.WithInterval(200*time.Microsecond),
		algossip.WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	msgs := algossip.RandomMessages(k, payloadLen, seed)
	for i, m := range msgs {
		if err := c.Seed(algossip.NodeID(i), m); err != nil {
			return nil, nil, err
		}
	}
	return c, msgs, nil
}

func verify(c *algossip.Cluster, msgs []algossip.Message, nodes int) error {
	for v := 0; v < nodes; v++ {
		got, err := c.Decode(algossip.NodeID(v))
		if err != nil {
			return fmt.Errorf("node %d: %w", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					return fmt.Errorf("node %d decoded message %d incorrectly", v, i)
				}
			}
		}
	}
	return nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Scenario 1: clean in-memory transport.
	clean := algossip.NewChanTransport()
	defer closeQuietly(clean)
	c1, msgs, err := buildCluster(clean, 1)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := c1.Run(ctx); err != nil {
		return err
	}
	cleanTime := time.Since(start)
	if err := verify(c1, msgs, 9); err != nil {
		return err
	}
	fmt.Printf("clean run:        9/9 nodes decoded in %v\n", cleanTime.Round(time.Millisecond))

	// Scenario 2: 30% of all packets dropped.
	lossy, err := runtime.NewLossyTransport(runtime.NewChanTransport(), 0.3, 99)
	if err != nil {
		return err
	}
	defer closeQuietly(lossy)
	c2, msgs2, err := buildCluster(lossy, 2)
	if err != nil {
		return err
	}
	start = time.Now()
	if _, err := c2.Run(ctx); err != nil {
		return err
	}
	lossTime := time.Since(start)
	if err := verify(c2, msgs2, 9); err != nil {
		return err
	}
	stats := lossy.Stats()
	fmt.Printf("30%% packet loss:  9/9 nodes decoded in %v (%d delivered, %d dropped — no retransmissions)\n",
		lossTime.Round(time.Millisecond), stats.Total.Sent, stats.Total.Dropped)

	// Scenario 3: crash a corner node mid-run.
	churn := algossip.NewChanTransport()
	defer closeQuietly(churn)
	c3, msgs3, err := buildCluster(churn, 3)
	if err != nil {
		return err
	}
	go func() {
		time.Sleep(time.Millisecond)
		c3.Kill(8)
	}()
	start = time.Now()
	done, err := c3.Run(ctx)
	if err != nil {
		return err
	}
	if err := verify(c3, msgs3, 8); err != nil { // the 8 survivors
		return err
	}
	fmt.Printf("node 8 crashed:   %d nodes decoded in %v (crash absorbed by redundancy)\n",
		done, time.Since(start).Round(time.Millisecond))
	return nil
}

func closeQuietly(t algossip.Transport) {
	_ = t.Close()
}
