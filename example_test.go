package algossip_test

import (
	"fmt"

	"algossip"
)

// Example demonstrates the one-call timing API: simulate TAG with the
// round-robin broadcast on a barbell graph.
func Example() {
	g := algossip.Barbell(32)
	res, err := algossip.Run(algossip.Spec{
		Graph:    g,
		K:        32,
		Protocol: algossip.ProtocolTAGRR,
	}, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Completed)
	// Output: true
}

// ExampleDisseminate moves real data: five messages spread over a ring are
// decoded, in order, by every node.
func ExampleDisseminate() {
	g := algossip.Ring(8)
	msgs := []algossip.Message{
		{Index: 0, Payload: []byte{'g'}},
		{Index: 1, Payload: []byte{'o'}},
		{Index: 2, Payload: []byte{'s'}},
		{Index: 3, Payload: []byte{'s'}},
		{Index: 4, Payload: []byte{'!'}},
	}
	decoded, _, err := algossip.Disseminate(g, msgs, nil, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, m := range decoded {
		fmt.Printf("%c", m.Payload[0])
	}
	fmt.Println()
	// Output: goss!
}

// ExampleSplitBytes shows the byte-level round trip used by the filesync
// example: chunk, disseminate, reassemble.
func ExampleSplitBytes() {
	data := []byte("algebraic gossip")
	msgs, err := algossip.SplitBytes(data, 4, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	decoded, _, err := algossip.Disseminate(algossip.Complete(6), msgs, nil, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := algossip.JoinBytes(decoded)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(out))
	// Output: algebraic gossip
}

// ExampleRunDetailed inspects traffic accounting: every received packet is
// classified as helpful (rank increased) or useless.
func ExampleRunDetailed() {
	g := algossip.Complete(16)
	res, det, err := algossip.RunDetailed(algossip.Spec{Graph: g, K: 16}, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Each node needs exactly k helpful packets beyond its seed.
	fmt.Println(res.Completed, det.Traffic.Helpful == 16*16-16)
	// Output: true true
}
